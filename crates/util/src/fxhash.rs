//! FxHash: the fast, non-cryptographic hash used throughout the workspace.
//!
//! This is a from-scratch implementation of the multiply-and-rotate hash
//! popularized by Firefox and rustc (`rustc-hash`). It is not HashDoS
//! resistant, which is acceptable here: keys are internal integer IDs, not
//! attacker-controlled input. For integer keys it is several times faster
//! than the standard library's SipHash 1-3, and overlap counting — the hot
//! loop of the s-line graph algorithms — is dominated by hashmap updates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio constant (2^64 / phi), the classic Fibonacci
/// hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic streaming hasher.
///
/// State updates follow `state = (rotl(state, 5) ^ word) * SEED`, applied
/// per 8-byte word (with a shorter tail). Identical in spirit to rustc's
/// `FxHasher`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// Creates a hasher with zeroed state.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Convenience constructor: an empty [`FxHashMap`].
#[inline]
pub fn fxmap<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor: an [`FxHashMap`] with `cap` pre-reserved slots.
#[inline]
pub fn fxmap_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty [`FxHashSet`].
#[inline]
pub fn fxset<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Hashes a single `u64` to a `u64` (useful for seeding and cheap mixing).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::new();
    h.write_u64(x);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::new();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u64)), hash_of(&(1u32, 2u64)));
    }

    #[test]
    fn different_inputs_hash_differently() {
        // Not guaranteed in general, but these must differ for a sane hash.
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[3u8, 2, 1]));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Streams shorter than a word and non-multiples of 8 must still hash.
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::new();
            h1.write(&bytes);
            let mut h2 = FxHasher::new();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish(), "len={len}");
        }
    }

    #[test]
    fn prefix_extension_changes_hash() {
        let mut h1 = FxHasher::new();
        h1.write(&[1, 2, 3, 4]);
        let base = h1.finish();
        h1.write(&[5]);
        assert_ne!(base, h1.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = fxmap();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = fxset();
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn collision_rate_on_dense_integers_is_low() {
        // Dense integer keys are the common case (hyperedge IDs). The hash
        // must spread them across the full 64-bit space reasonably: check
        // that the top 16 bits take many distinct values.
        let mut tops: FxHashSet<u16> = fxset();
        for i in 0..4096u64 {
            tops.insert((hash_u64(i) >> 48) as u16);
        }
        assert!(
            tops.len() > 2048,
            "only {} distinct top-16 prefixes",
            tops.len()
        );
    }

    #[test]
    fn capacity_constructor_reserves() {
        let m: FxHashMap<u32, u32> = fxmap_with_capacity(100);
        assert!(m.capacity() >= 100);
    }
}
