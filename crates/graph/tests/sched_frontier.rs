//! Model-checked frontier atomic-bitmap unit (exhaustive interleavings).
//!
//! Runs only under `RUSTFLAGS="--cfg hyperline_sched"` (the sched step
//! of `scripts/check.sh`). The `AtomicBits::claim` `fetch_or` is the
//! only synchronization the parallel BFS push phase has: first-parent
//! uniqueness — exactly one worker wins each vertex — is the invariant
//! the whole Stage-5 frontier engine leans on for byte-identical output
//! across worker counts.
#![cfg(hyperline_sched)]

use hyperline_graph::frontier::AtomicBits;
use hyperline_sched::explore;
use hyperline_util::sync::atomic::{AtomicU64, Ordering};
use hyperline_util::sync::{thread, Arc};

#[test]
fn claim_grants_each_bit_to_exactly_one_worker() {
    explore(|| {
        let bits = Arc::new(AtomicBits::new(128));
        let wins = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2u32)
            .map(|t| {
                let (bits, wins) = (bits.clone(), wins.clone());
                thread::spawn(move || {
                    // Contended vertex: both workers discover 70 at the
                    // same level.
                    if bits.claim(70) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                    // Private vertex in the SAME word as the other
                    // worker's: word-level RMW contention must not leak
                    // across bit positions.
                    assert!(bits.claim(t), "uncontended bit {t} was already set");
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::Relaxed),
            1,
            "contended vertex claimed by != 1 worker (first-parent uniqueness broken)"
        );
        assert!(
            bits.get(70) && bits.get(0) && bits.get(1),
            "claimed bits not visible after join"
        );
    });
}

#[test]
fn claim_then_get_is_visible_to_the_claimer() {
    explore(|| {
        let bits = Arc::new(AtomicBits::new(64));
        let b2 = bits.clone();
        let t = thread::spawn(move || {
            assert!(b2.claim(3), "fresh bit not claimable");
            assert!(b2.get(3), "own claim not visible to claimer");
        });
        // A racing reader may see the bit either way; after join it is
        // settled.
        let _ = bits.get(3);
        t.join().unwrap();
        assert!(bits.get(3), "claim not visible after join");
    });
}
