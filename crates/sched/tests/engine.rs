//! Engine tests for the model checker itself. These run under plain
//! `cargo test` — the shims are used directly (not through the
//! `hyperline_util::sync` seam), so no special cfg is needed.
//!
//! The suite proves both directions: correct protocols survive every
//! explored schedule, and known-buggy variants (lost update, deadlock,
//! lost wakeup, and the weakened-ordering mutant of the single-flight
//! publish fence) are *caught*. The mutant test is the regression
//! demanded by the tooling issue: weakening one Release/Acquire pair to
//! Relaxed must produce a failing schedule, or the checker has lost its
//! teeth.

use hyperline_sched::sync::{AtomicU64, Condvar, Mutex, Ordering};
use hyperline_sched::{explore, explore_with, thread, Config};
use std::sync::Arc;

fn small() -> Config {
    Config {
        max_schedules: 20_000,
        ..Config::default()
    }
}

// -- basic soundness ---------------------------------------------------

#[test]
fn fetch_add_never_loses_increments() {
    explore(|| {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2, "atomic RMW lost an increment");
    });
}

#[test]
fn load_store_increment_race_is_found() {
    // The classic lost update: two threads do a non-atomic
    // read-modify-write. The checker must find the interleaving where
    // both read 0 and the final value is 1.
    let report = explore_with(small(), || {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    let fail = report.failure.expect("checker missed the lost-update race");
    assert!(
        !fail.schedule.is_empty(),
        "failure should carry a replayable schedule"
    );
}

#[test]
fn fetch_or_claim_is_exclusive() {
    // Mirrors the frontier bitmap claim: fetch_or returning a clear bit
    // grants ownership to exactly one thread.
    explore(|| {
        let bits = Arc::new(AtomicU64::new(0));
        let wins = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let bits = bits.clone();
                let wins = wins.clone();
                thread::spawn(move || {
                    if bits.fetch_or(1, Ordering::Relaxed) & 1 == 0 {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::Relaxed),
            1,
            "bitmap claim granted to != 1 thread"
        );
    });
}

// -- mutex / condvar ---------------------------------------------------

#[test]
fn mutex_protects_nonatomic_increment() {
    explore(|| {
        let c = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let mut g = c.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

#[test]
fn abba_deadlock_is_found() {
    let report = explore_with(small(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t1 = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let (a3, b3) = (a.clone(), b.clone());
        let t2 = thread::spawn(move || {
            let _gb = b3.lock().unwrap();
            let _ga = a3.lock().unwrap();
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    let fail = report.failure.expect("checker missed the ABBA deadlock");
    assert!(
        fail.message.contains("deadlock"),
        "unexpected failure: {}",
        fail.message
    );
}

#[test]
fn condvar_handoff_completes() {
    explore(|| {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let s2 = slot.clone();
        let consumer = thread::spawn(move || {
            let (mx, cv) = &*s2;
            let mut g = mx.lock().unwrap();
            while g.is_none() {
                g = cv.wait(g).unwrap();
            }
            g.take().unwrap()
        });
        {
            let (mx, cv) = &*slot;
            *mx.lock().unwrap() = Some(7);
            cv.notify_one();
        }
        assert_eq!(consumer.join().unwrap(), 7);
    });
}

#[test]
fn lost_wakeup_is_found() {
    // Buggy protocol: the consumer drops the lock between checking the
    // predicate and waiting, so the producer's notify can land in the
    // gap and the wait blocks forever. Detected as a deadlock.
    let report = explore_with(small(), || {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let s2 = slot.clone();
        let consumer = thread::spawn(move || {
            let (mx, cv) = &*s2;
            let empty = mx.lock().unwrap().is_none();
            if empty {
                let g = mx.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            }
            mx.lock().unwrap().take()
        });
        let (mx, cv) = &*slot;
        *mx.lock().unwrap() = Some(7);
        cv.notify_one();
        let _ = consumer.join();
    });
    let fail = report.failure.expect("checker missed the lost wakeup");
    assert!(
        fail.message.contains("deadlock"),
        "unexpected failure: {}",
        fail.message
    );
}

// -- memory model ------------------------------------------------------

/// Test-only copy of the single-flight publish fence: the flight owner
/// writes the computed value into the slot, then publishes readiness
/// with a generation stamp. Waiters that observe the stamp must observe
/// the value. `correct` selects Release/Acquire on the stamp; the
/// mutant weakens both sides to Relaxed.
fn single_flight_fence(correct: bool) {
    let slot = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(AtomicU64::new(0));
    let (pub_order, sub_order) = if correct {
        (Ordering::Release, Ordering::Acquire)
    } else {
        (Ordering::Relaxed, Ordering::Relaxed)
    };
    let (s2, r2) = (slot.clone(), ready.clone());
    let owner = thread::spawn(move || {
        s2.store(42, Ordering::Relaxed);
        r2.store(1, pub_order);
    });
    let (s3, r3) = (slot.clone(), ready.clone());
    let waiter = thread::spawn(move || {
        if r3.load(sub_order) == 1 {
            assert_eq!(
                s3.load(Ordering::Relaxed),
                42,
                "waiter observed the generation stamp but a stale slot value"
            );
        }
    });
    owner.join().unwrap();
    waiter.join().unwrap();
}

#[test]
fn single_flight_fence_is_sound() {
    explore(|| single_flight_fence(true));
}

#[test]
fn weakened_single_flight_fence_mutant_is_caught() {
    // THE teeth test: one ordering pair weakened to Relaxed must yield a
    // failing schedule, proving the checker detects the exact bug class
    // it exists for.
    let report = explore_with(small(), || single_flight_fence(false));
    let fail = report
        .failure
        .expect("checker failed to catch the Relaxed-weakened publish fence");
    assert!(
        fail.message.contains("stale slot value"),
        "unexpected failure: {}",
        fail.message
    );
}

// -- explorer plumbing -------------------------------------------------

#[test]
fn exhaustive_run_reports_complete() {
    let report = explore_with(small(), || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = c.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none());
    assert!(report.complete, "tiny test should be fully enumerated");
    assert!(report.schedules > 1, "expected more than one interleaving");
}
