//! Sparse matrix substrate: CSR matrices and Gustavson SpGEMM.
//!
//! This crate exists to reproduce the paper's **baseline comparator**
//! (§III-G, §VI-G): computing the hyperedge overlap matrix `L = Hᵀ·H` with
//! a general sparse matrix-matrix multiplication and then filtering
//! `L[i,j] ≥ s` into an s-line-graph edge list. The core s-line-graph
//! algorithms in `hyperline-slinegraph` deliberately avoid this
//! materialization; benchmarking both sides is how Figure 11 is
//! regenerated.
//!
//! ```
//! use hyperline_hypergraph::Hypergraph;
//! use hyperline_sparse::{overlap_matrix, filter_to_edge_list, Triangle};
//!
//! let h = Hypergraph::paper_example();
//! let l = overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Upper);
//! let mut edges = filter_to_edge_list(&l, 2);
//! edges.sort_unstable();
//! assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
//! ```

#![warn(missing_docs)]

pub mod clique;
pub mod matrix;
pub mod spgemm;

pub use clique::{sclique_via_w, weighted_clique_expansion};
pub use matrix::CsrMatrix;
pub use spgemm::{filter_to_edge_list, overlap_matrix, spgemm, spgemm_seq, Triangle};
