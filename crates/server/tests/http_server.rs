//! End-to-end tests: a real listener on an ephemeral port, raw TCP
//! clients, concurrency, cache behavior and the wire protocol.

use hyperline_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Minimal HTTP/1.1 client: one request, `Connection: close`, returns
/// `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn post(addr: SocketAddr, target: &str) -> (u16, String) {
    post_body(addr, target, "")
}

fn post_body(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nhost: test\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw, ""));
    let chunked = head
        .lines()
        .any(|l| l.eq_ignore_ascii_case("transfer-encoding: chunked"));
    let body = if chunked {
        String::from_utf8(dechunk(body.as_bytes())).expect("UTF-8 chunked body")
    } else {
        body.to_string()
    };
    (status, body)
}

/// Reassembles a chunked body (shared strict helper, unwrapped).
fn dechunk(body: &[u8]) -> Vec<u8> {
    hyperline_server::http::dechunk(body).expect("well-formed chunked body")
}

fn start_server(profile: &str, threads: usize) -> (hyperline_server::ServerHandle, String) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        cache_mb: 64,
        queue_depth: 256,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let name = server
        .registry()
        .load_profile(profile, 42, None)
        .expect("load profile");
    (server.spawn(), name)
}

#[test]
fn serves_basic_endpoints_over_tcp() {
    let (handle, name) = start_server("lesMis", 2);
    let addr = handle.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"), "{body}");

    let (status, body) = get(addr, "/datasets");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"name\":\"{name}\"")), "{body}");

    let (status, body) = get(addr, &format!("/datasets/{name}/stats"));
    assert_eq!(status, 200);
    assert!(body.contains("\"hyperedges\":400"), "{body}");

    let (status, _) = get(addr, &format!("/datasets/{name}/slg?s=2&limit=5"));
    assert_eq!(status, 200);

    let (status, body) = get(addr, "/datasets/ghost/slg");
    assert_eq!(status, 404);
    assert!(body.contains("error"), "{body}");

    handle.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (handle, _) = start_server("lesMis", 2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for i in 0..3 {
        write!(stream, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        // Read exactly one response: headers + fixed content-length body.
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).unwrap();
            buf.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&buf).to_string();
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        assert!(head.contains("connection: keep-alive"), "request {i}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).unwrap();
        assert!(String::from_utf8_lossy(&body).contains("\"ok\":true"));
    }
    handle.shutdown();
}

#[test]
fn post_datasets_then_query() {
    let (handle, _) = start_server("lesMis", 2);
    let addr = handle.addr();
    let (status, body) = post(addr, "/datasets?profile=compBoard&seed=7&name=boards");
    assert_eq!(status, 201, "{body}");
    let (status, body) = get(addr, "/datasets/boards/spectrum?s=2");
    assert_eq!(status, 200);
    assert!(body.contains("\"algebraic_connectivity\""), "{body}");
    let (status, _) = post(addr, "/datasets?profile=not-a-profile");
    assert_eq!(status, 400);
    handle.shutdown();
}

/// Acceptance: ≥ 64 concurrent connections answered correctly — every
/// response is 200 and identical up to the cache-outcome field, and the
/// expensive construction ran exactly once (single-flight).
#[test]
fn sixty_four_concurrent_clients_get_identical_answers() {
    let (handle, name) = start_server("genomics", 8);
    let addr = handle.addr();
    let target = format!("/datasets/{name}/slg?s=2&limit=8");

    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..64)
            .map(|_| scope.spawn(|| get(addr, &target)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let normalize = |body: &str| {
        body.replace("\"cache\":\"miss\"", "\"cache\":\"_\"")
            .replace("\"cache\":\"hit\"", "\"cache\":\"_\"")
            .replace("\"cache\":\"coalesced\"", "\"cache\":\"_\"")
    };
    let reference = normalize(&responses[0].1);
    assert!(reference.contains("\"num_edges\""), "{reference}");
    for (i, (status, body)) in responses.iter().enumerate() {
        assert_eq!(*status, 200, "client {i}");
        assert_eq!(normalize(body), reference, "client {i} diverged");
    }

    let stats = handle.state().cache.stats();
    assert_eq!(stats.misses, 1, "construction must run exactly once");
    assert_eq!(
        stats.hits + stats.coalesced,
        63,
        "everyone else shares the artifact"
    );
    handle.shutdown();
}

/// Acceptance: a repeated s-line-graph query is served from cache with
/// ≥ 10× lower latency than the cold first request.
#[test]
fn cached_queries_are_at_least_ten_times_faster() {
    let (handle, name) = start_server("genomics", 4);
    let addr = handle.addr();
    let target = format!("/datasets/{name}/slg?s=2&limit=8");

    let cold_started = Instant::now();
    let (status, body) = get(addr, &target);
    let cold = cold_started.elapsed();
    assert_eq!(status, 200);
    assert!(body.contains("\"cache\":\"miss\""), "{body}");

    // Median of several warm requests to damp scheduler noise.
    let mut warm_times: Vec<Duration> = (0..7)
        .map(|_| {
            let started = Instant::now();
            let (status, body) = get(addr, &target);
            assert_eq!(status, 200);
            assert!(body.contains("\"cache\":\"hit\""), "{body}");
            started.elapsed()
        })
        .collect();
    warm_times.sort();
    let warm = warm_times[warm_times.len() / 2];

    assert!(
        cold >= warm * 10,
        "cold {cold:?} vs warm {warm:?}: expected ≥ 10× speedup from the cache"
    );
    handle.shutdown();
}

#[test]
fn metrics_reflect_traffic_and_cache_state() {
    let (handle, name) = start_server("lesMis", 2);
    let addr = handle.addr();
    for _ in 0..3 {
        let (status, _) = get(addr, &format!("/datasets/{name}/slg?s=2&limit=4"));
        assert_eq!(status, 200);
    }
    let (status, _) = get(addr, "/datasets/ghost/components");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"artifacts\":{\"hits\":2,\"misses\":1"),
        "{body}"
    );
    assert!(body.contains("\"endpoints\""), "{body}");
    // The slg endpoint saw 3 requests, none failed.
    assert!(
        body.contains("\"slg\":{\"requests\":3,\"errors\":0"),
        "{body}"
    );
    // The 404 was recorded on components.
    assert!(
        body.contains("\"components\":{\"requests\":1,\"errors\":1"),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn malformed_requests_get_400_and_close() {
    let (handle, _) = start_server("lesMis", 2);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "BOGUS\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    handle.shutdown();
}

/// Acceptance: warm `/sweep?max_s=8` and warm `/betweenness` are each
/// ≥ 5× faster than cold, repeated identical requests return
/// byte-identical bodies, and the metric-tier hits are visible in
/// `/metrics`.
#[test]
fn warm_sweep_and_betweenness_are_five_times_faster() {
    let (handle, name) = start_server("genomics", 4);
    let addr = handle.addr();

    let timed = |target: &str| {
        let cold_started = Instant::now();
        let (status, cold_body) = get(addr, target);
        let cold = cold_started.elapsed();
        assert_eq!(status, 200, "{target}: {cold_body}");
        let mut warm_times: Vec<Duration> = Vec::new();
        for _ in 0..7 {
            let started = Instant::now();
            let (status, warm_body) = get(addr, target);
            warm_times.push(started.elapsed());
            assert_eq!(status, 200);
            assert_eq!(
                cold_body, warm_body,
                "{target}: repeated responses diverged"
            );
        }
        warm_times.sort();
        let warm = warm_times[warm_times.len() / 2];
        assert!(
            cold >= warm * 5,
            "{target}: cold {cold:?} vs warm {warm:?}: expected ≥ 5× speedup"
        );
    };

    timed(&format!("/datasets/{name}/sweep?max_s=8"));
    timed(&format!("/datasets/{name}/betweenness?s=2&top=10"));

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // 16 requests, 2 metric-tier computes: 14 hits.
    assert!(
        body.contains("\"metrics\":{\"hits\":14,\"misses\":2"),
        "{body}"
    );
    handle.shutdown();
}

/// Acceptance: `POST /query` answers a batch of sub-queries in one
/// round-trip, reporting failures per item.
#[test]
fn batch_query_over_tcp() {
    let (handle, name) = start_server("lesMis", 2);
    let addr = handle.addr();
    let body = format!(
        r#"[{{"dataset":"{name}","op":"stats"}},
            {{"dataset":"{name}","op":"sweep","max_s":3}},
            {{"dataset":"{name}","op":"slg","s":2,"limit":4}},
            {{"dataset":"{name}","op":"betweenness","s":2,"top":3}},
            {{"dataset":"ghost","op":"stats"}}]"#
    );
    let (status, response) = post_body(addr, "/query", &body);
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"count\":5"), "{response}");
    assert!(response.contains("\"hyperedges\":400"), "{response}");
    assert!(response.contains("\"counts\":[[1,"), "{response}");
    assert!(response.contains("\"ranking\""), "{response}");
    assert!(response.contains("\"error\""), "{response}");

    // The batch populated both tiers: the equivalent GETs are warm.
    let (status, body) = get(addr, &format!("/datasets/{name}/slg?s=2&limit=4"));
    assert_eq!(status, 200);
    assert!(body.contains("\"cache\":\"hit\""), "{body}");

    // A malformed body is a 400 for the whole batch.
    let (status, response) = post_body(addr, "/query", "this is not json");
    assert_eq!(status, 400);
    assert!(response.contains("error"), "{response}");
    handle.shutdown();
}

/// Percent-encoded paths and query values resolve to the same resources
/// (and the same cache keys) as their literal spellings.
#[test]
fn percent_encoded_requests_resolve() {
    let (handle, name) = start_server("lesMis", 2);
    let addr = handle.addr();

    let (status, plain) = get(addr, &format!("/datasets/{name}/slg?s=2&limit=4"));
    assert_eq!(status, 200);
    assert!(plain.contains("\"cache\":\"miss\""), "{plain}");
    // `%32` is '2'; the encoded spelling must hit the artifact the plain
    // one cached (same key), not mint a new one.
    let (status, encoded) = get(addr, &format!("/datasets/{name}/slg?s=%32&limit=4"));
    assert_eq!(status, 200);
    assert!(encoded.contains("\"cache\":\"hit\""), "{encoded}");
    assert_eq!(
        plain.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
        encoded
    );
    // The dataset name is decodable in the path position too.
    let encoded_name: String = name.bytes().map(|b| format!("%{b:02x}")).collect();
    let (status, _) = get(addr, &format!("/datasets/{encoded_name}/stats"));
    assert_eq!(status, 200);

    // Invalid escapes are a 400, not a silent passthrough.
    let (status, body) = get(addr, &format!("/datasets/{name}/slg?s=%zz"));
    assert_eq!(status, 400, "{body}");
    let (status, _) = get(addr, "/datasets/bad%2name/stats");
    assert_eq!(status, 400);
    handle.shutdown();
}

#[test]
fn sweep_and_weighted_agree_with_library() {
    use hyperline_slinegraph::{algo2_slinegraph, Strategy};

    let (handle, name) = start_server("lesMis", 2);
    let addr = handle.addr();
    let h = hyperline_gen::Profile::LesMis.generate(42);

    // Sweep counts match direct library calls.
    let (status, body) = get(addr, &format!("/datasets/{name}/sweep?max_s=3"));
    assert_eq!(status, 200);
    for s in 1..=3u32 {
        let count = algo2_slinegraph(&h, s, &Strategy::default()).edges.len();
        assert!(
            body.contains(&format!("[{s},{count}]")),
            "s={s} count={count}: {body}"
        );
    }

    // Weighted edges are (i, j, overlap) with overlap >= s.
    let (status, body) = get(
        addr,
        &format!("/datasets/{name}/slg?s=3&weighted=1&limit=100000"),
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"cache\":\"miss\""));
    let expected = algo2_slinegraph(&h, 3, &Strategy::default()).edges.len();
    assert!(
        body.contains(&format!("\"num_edges\":{expected}")),
        "{body}"
    );
    handle.shutdown();
}

#[test]
fn access_log_and_pipeline_observability_end_to_end() {
    use hyperline_server::json::Json;

    let log_path =
        std::env::temp_dir().join(format!("hyperline-access-log-{}.jsonl", std::process::id()));
    std::fs::remove_file(&log_path).ok();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_mb: 64,
        access_log: Some(log_path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let name = server
        .registry()
        .load_profile("lesMis", 42, None)
        .expect("load profile");
    let handle = server.spawn();
    let addr = handle.addr();

    // A cold metric query exercises the full pipeline; a warm repeat
    // gives the log a cache-hit line.
    let (status, _) = get(addr, &format!("/datasets/{name}/spectrum?s=2"));
    assert_eq!(status, 200);
    let (status, _) = get(addr, &format!("/datasets/{name}/spectrum?s=2"));
    assert_eq!(status, 200);
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    // /debug/pipeline shows the collected stage tree over HTTP.
    let (status, body) = get(addr, "/debug/pipeline");
    assert_eq!(status, 200);
    for stage in ["counting", "merge", "postprocess", "csr", "stage5"] {
        assert!(body.contains(&format!("\"{stage}\"")), "{stage}: {body}");
    }

    // The Prometheus exposition serves over HTTP with its content-type.
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET /metrics?format=prometheus HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(
        raw.contains("content-type: text/plain; version=0.0.4"),
        "{raw}"
    );
    assert!(
        raw.contains("hyperline_requests_total{route=\"spectrum\"} 2"),
        "{raw}"
    );

    // Queue-wait samples were recorded for every handled connection.
    let (_, metrics) = get(addr, "/metrics");
    let parsed = Json::parse(&metrics).unwrap();
    let queue_wait = parsed
        .get("pool")
        .and_then(|p| p.get("queue_wait"))
        .expect("queue_wait histogram");
    assert!(queue_wait.get("count").unwrap().as_int().unwrap() >= 5);

    // Every request so far produced one structured JSONL line.
    handle.state().access_log().expect("log enabled").flush();
    let text = std::fs::read_to_string(&log_path).expect("log file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 6, "expected >= 6 lines, got {}", lines.len());
    let records: Vec<Json> = lines
        .iter()
        .map(|l| Json::parse(l).expect("log line parses"))
        .collect();
    for record in &records {
        for field in [
            "id",
            "route",
            "status",
            "bytes_out",
            "gzip",
            "queue_wait_micros",
            "handle_micros",
        ] {
            assert!(record.get(field).is_some(), "missing {field}: {record:?}");
        }
        assert!(record.get("bytes_out").unwrap().as_int().unwrap() > 0);
    }
    // The cold/warm spectrum pair logs miss then hit, with dataset + s.
    let spectra: Vec<&Json> = records
        .iter()
        .filter(|r| r.get("route").and_then(Json::as_str) == Some("spectrum"))
        .collect();
    assert_eq!(spectra.len(), 2, "{text}");
    assert_eq!(spectra[0].get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(spectra[1].get("cache").unwrap().as_str(), Some("hit"));
    for r in &spectra {
        assert_eq!(r.get("dataset").unwrap().as_str(), Some(name.as_str()));
        assert_eq!(r.get("s").unwrap().as_int(), Some(2));
    }
    // Request IDs are unique and share one startup nonce.
    let ids: Vec<&str> = records
        .iter()
        .map(|r| r.get("id").unwrap().as_str().unwrap())
        .collect();
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "duplicate request IDs");

    handle.shutdown();
    std::fs::remove_file(&log_path).ok();
}
