//! Hypergraph substrate for the `hyperline` workspace.
//!
//! A hypergraph `H = (V, E)` is a vertex set plus a family of hyperedges
//! `e ⊆ V` of arbitrary (non-uniform) sizes. This crate provides:
//!
//! * [`Hypergraph`] — the bipartite incidence structure stored as two
//!   sorted CSRs (edge→vertices and vertex→edges);
//! * [`csr::Csr`] — the underlying compressed sparse row storage plus the
//!   sorted-set intersection kernels used by the baselines;
//! * [`prep`] — Stage 1 preprocessing (cleaning, relabel-by-degree);
//! * [`toplex`] — Stage 2 toplex computation / simplification;
//! * [`io`] — plain-text interchange formats.
//!
//! ```
//! use hyperline_hypergraph::Hypergraph;
//!
//! let h = Hypergraph::paper_example();
//! assert_eq!(h.num_edges(), 4);
//! assert_eq!(h.inc(0, 2), 3); // edges {a,b,c} and {a,b,c,d,e} share 3 vertices
//! ```

#![warn(missing_docs)]

pub mod checks;
pub mod csr;
pub mod hypergraph;
pub mod io;
pub mod prep;
pub mod toplex;

pub use csr::Csr;
pub use hypergraph::Hypergraph;
pub use prep::{clean, relabel_edges_by_degree, RelabelOrder, Relabeled};
pub use toplex::{is_simple, toplexes, Toplexes};
