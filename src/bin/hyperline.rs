//! `hyperline` — command-line s-line-graph analysis of hypergraphs.
//!
//! A thin CLI over the library for downstream users who just have a
//! hypergraph file and want s-line graphs and s-metrics without writing
//! Rust. Input format: one hyperedge per line, whitespace-separated
//! vertex IDs (`#`/`%` comments); or `edge vertex` pairs with `--pairs`.
//!
//! ```text
//! hyperline stats      <file>                    input characteristics
//! hyperline slg        <file> --s=8 [--out=f]    s-line graph edge list
//! hyperline components <file> --s=8              s-connected components
//! hyperline between    <file> --s=8 [--top=10] [--samples=64]  s-betweenness ranking
//! hyperline spectrum   <file> --s=8              algebraic connectivity
//! hyperline sweep      <file> --max-s=16         |E(L_s)| for s = 1..max
//! hyperline gen        <profile> --out=<f>       write a synthetic dataset
//! hyperline serve      <file|profile:NAME>...    HTTP query server w/ cache
//! ```

use hyperline::gen::Profile;
use hyperline::hypergraph::{io, toplex, Hypergraph};
use hyperline::prelude::*;
use std::io::Write as _;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hyperline <command> [args]\n\
         commands:\n  \
         stats      <file>                      input characteristics\n  \
         slg        <file> --s=N [--out=FILE]   s-line graph edge list\n  \
         components <file> --s=N                s-connected components\n  \
         between    <file> --s=N [--top=K] [--samples=K] s-betweenness ranking (sampled if --samples)\n  \
         spectrum   <file> --s=N                normalized algebraic connectivity\n  \
         sweep      <file> [--max-s=N]          edge counts for s = 1..N\n  \
         draw       <file> --s=N [--out=FILE]   weighted s-line graph as Graphviz DOT\n  \
         gen        <profile> --out=FILE        write a synthetic dataset\n  \
         serve      <file|profile:NAME>... [--port=7878] [--threads=N]\n  \
                    [--cache-mb=256] [--queue=1024] [--seed=N] [--data-root=DIR]\n  \
                    [--access-log=FILE] [--access-log-sample=N]\n  \
                    [--request-deadline-ms=N] [--route-deadline-ms=ROUTE=MS]...\n  \
                    [--head-timeout-ms=N] [--write-timeout-ms=N]\n  \
                    [--drain-deadline-ms=N] [--negative-ttl-ms=N]\n  \
                    concurrent HTTP/1.1 JSON query server with a\n  \
                    two-tier (artifact + Stage-5 metric) cache and\n  \
                    batched POST /query (GET / lists the endpoints;\n  \
                    --data-root sandboxes POST /datasets?path= loading;\n  \
                    --access-log writes JSONL request logs, keeping\n  \
                    1-in-N with --access-log-sample)\n\
         common flags: --pairs (input is `edge vertex` lines), --seed=N, --sclique\n\
         profiles: {}",
        Profile::ALL.map(|p| p.name()).join(", ")
    );
    ExitCode::FAILURE
}

fn opt<T: std::str::FromStr>(name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

fn has_flag(name: &str) -> bool {
    let bare = format!("--{name}");
    std::env::args().any(|a| a == bare)
}

fn load(path: &str) -> Result<Hypergraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let h = if has_flag("pairs") {
        io::read_bipartite_pairs(file)
    } else {
        io::read_edge_list(file)
    }
    .map_err(|e| format!("parse error in {path}: {e}"))?;
    // The s-clique view analyzes the dual hypergraph with the same code.
    Ok(if has_flag("sclique") { h.dual() } else { h })
}

fn build(h: &Hypergraph, s: u32) -> SLineGraph {
    let run = run_pipeline(
        h,
        &PipelineConfig {
            s,
            run_components: false,
            ..PipelineConfig::new(s)
        },
    );
    run.line_graph
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1) else {
        return usage();
    };
    // `serve` can start empty (datasets arrive via POST /datasets); every
    // other command needs its file/profile argument.
    let empty = String::new();
    let target = match args.get(2) {
        Some(t) => t,
        None if command == "serve" => &empty,
        None => return usage(),
    };
    let s: u32 = opt("s", 2);
    match command.as_str() {
        "stats" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            println!("vertices:            {}", h.num_vertices());
            println!("hyperedges:          {}", h.num_edges());
            println!("incidences:          {}", h.num_incidences());
            println!("mean vertex degree:  {:.2}", h.mean_vertex_degree());
            println!("mean edge size:      {:.2}", h.mean_edge_size());
            println!("max vertex degree:   {}", h.max_vertex_degree());
            println!("max edge size:       {}", h.max_edge_size());
            let t = toplex::toplexes(&h);
            println!(
                "toplexes:            {} ({})",
                t.toplex_ids.len(),
                if t.toplex_ids.len() == h.num_edges() {
                    "simple"
                } else {
                    "not simple"
                }
            );
        }
        "slg" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let r = algo2_slinegraph(&h, s, &Strategy::default());
            let out_path: String = opt("out", String::new());
            if out_path.is_empty() {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                for (a, b) in &r.edges {
                    let _ = writeln!(lock, "{a} {b}");
                }
            } else {
                let mut f = match std::fs::File::create(&out_path) {
                    Ok(f) => std::io::BufWriter::new(f),
                    Err(e) => return fail(&format!("cannot create {out_path}: {e}")),
                };
                for (a, b) in &r.edges {
                    let _ = writeln!(f, "{a} {b}");
                }
                eprintln!("wrote {} edges to {out_path}", r.edges.len());
            }
        }
        "components" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let slg = build(&h, s);
            let comps = slg.connected_components();
            println!("{} {s}-connected component(s):", comps.len());
            for comp in comps {
                let ids: Vec<String> = comp.iter().map(u32::to_string).collect();
                println!("  [{}]", ids.join(", "));
            }
        }
        "between" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let top: usize = opt("top", 10);
            // --samples=K switches to the Brandes–Pich approximation
            // (deterministic in --seed), for large line graphs where only
            // the top ranking matters.
            let samples: usize = opt("samples", 0);
            let slg = build(&h, s);
            let ranking = if samples == 0 {
                slg.betweenness()
            } else {
                slg.betweenness_sampled(samples, opt("seed", 42))
            };
            for (e, score) in ranking.into_iter().take(top) {
                println!("{e}\t{score:.6}");
            }
        }
        "spectrum" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let slg = build(&h, s);
            println!(
                "s = {s}: |V| = {}, |E| = {}, diameter = {}, normalized algebraic connectivity = {:.6}",
                slg.num_vertices(),
                slg.num_edges(),
                slg.s_diameter(),
                slg.algebraic_connectivity()
            );
        }
        "sweep" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let max_s: u32 = opt("max-s", 16);
            let s_values: Vec<u32> = (1..=max_s).collect();
            for (s, count) in
                hyperline::slinegraph::edge_counts_over_s(&h, &s_values, &Strategy::default())
            {
                println!("{s}\t{count}");
            }
        }
        "draw" => {
            let h = match load(target) {
                Ok(h) => h,
                Err(e) => return fail(&e),
            };
            let (edges, _) = algo2_slinegraph_weighted(&h, s, &Strategy::default());
            let squeezer =
                hyperline::util::IdSqueezer::from_ids(edges.iter().flat_map(|&(a, b, _)| [a, b]));
            let compact: Vec<(u32, u32, u32)> = edges
                .iter()
                .map(|&(a, b, w)| {
                    (
                        squeezer.squeeze(a).unwrap(),
                        squeezer.squeeze(b).unwrap(),
                        w,
                    )
                })
                .collect();
            let wg = hyperline::graph::WeightedGraph::from_edges(squeezer.len().max(1), &compact);
            let dot_text =
                hyperline::graph::dot::to_dot_weighted(&wg, |v| squeezer.unsqueeze(v).to_string());
            let out_path: String = opt("out", String::new());
            if out_path.is_empty() {
                print!("{dot_text}");
            } else if let Err(e) = std::fs::write(&out_path, &dot_text) {
                return fail(&format!("cannot write {out_path}: {e}"));
            } else {
                eprintln!(
                    "wrote {} vertices / {} weighted edges to {out_path}",
                    wg.graph.num_vertices(),
                    wg.graph.num_edges()
                );
            }
        }
        "serve" => {
            use hyperline::server::{Route, Server, ServerConfig};
            use std::time::Duration;
            let port: u16 = opt("port", 7878);
            let host: String = opt("host", "127.0.0.1".to_string());
            let data_root: String = opt("data-root", String::new());
            let access_log: String = opt("access-log", String::new());
            let defaults = ServerConfig::default();
            // Per-route deadline overrides: repeatable
            // `--route-deadline-ms=ROUTE=MS` (route names as in /metrics).
            let mut route_deadlines = Vec::new();
            for spec in std::env::args()
                .filter_map(|a| a.strip_prefix("--route-deadline-ms=").map(str::to_string))
            {
                let parsed = spec.split_once('=').and_then(|(route, ms)| {
                    let route = *Route::ALL.iter().find(|r| r.name() == route)?;
                    Some((route, Duration::from_millis(ms.parse().ok()?)))
                });
                match parsed {
                    Some(entry) => route_deadlines.push(entry),
                    None => {
                        return fail(&format!(
                            "bad --route-deadline-ms={spec:?} (want ROUTE=MILLIS)"
                        ))
                    }
                }
            }
            let request_deadline_ms: u64 = opt("request-deadline-ms", 0);
            let config = ServerConfig {
                addr: format!("{host}:{port}"),
                threads: opt("threads", 0),
                cache_mb: opt("cache-mb", 256),
                queue_depth: opt("queue", 1024),
                data_root: (!data_root.is_empty()).then(|| data_root.clone().into()),
                access_log: (!access_log.is_empty()).then(|| access_log.clone().into()),
                access_log_sample: opt("access-log-sample", 1),
                request_deadline: (request_deadline_ms > 0)
                    .then(|| Duration::from_millis(request_deadline_ms)),
                route_deadlines,
                head_timeout: Duration::from_millis(opt(
                    "head-timeout-ms",
                    defaults.head_timeout.as_millis() as u64,
                )),
                write_timeout: Duration::from_millis(opt(
                    "write-timeout-ms",
                    defaults.write_timeout.as_millis() as u64,
                )),
                drain_deadline: Duration::from_millis(opt(
                    "drain-deadline-ms",
                    defaults.drain_deadline.as_millis() as u64,
                )),
                negative_ttl: Duration::from_millis(opt(
                    "negative-ttl-ms",
                    defaults.negative_ttl.as_millis() as u64,
                )),
                ..defaults
            };
            let server = match Server::bind(config) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot bind {host}:{port}: {e}")),
            };
            let seed: u64 = opt("seed", 42);
            // Positional arguments are datasets: files, or `profile:NAME`.
            for spec in args.iter().skip(2).filter(|a| !a.starts_with("--")) {
                let loaded = match spec.strip_prefix("profile:") {
                    Some(profile) => server.registry().load_profile(profile, seed, None),
                    None => server.registry().load_file(spec, None),
                };
                match loaded {
                    Ok(name) => {
                        let d = server.registry().get(&name).unwrap();
                        eprintln!(
                            "loaded {name} ({} vertices, {} hyperedges)",
                            d.hypergraph.num_vertices(),
                            d.hypergraph.num_edges()
                        );
                    }
                    Err(e) => return fail(&e),
                }
            }
            eprintln!(
                "hyperline-server listening on http://{} ({} threads, {} MiB cache)",
                server.local_addr(),
                server.threads(),
                opt("cache-mb", 256usize),
            );
            server.run();
        }
        "gen" => {
            let Some(profile) = Profile::from_name(target) else {
                return fail(&format!("unknown profile {target:?}"));
            };
            let seed: u64 = opt("seed", 42);
            let out_path: String = opt("out", format!("{}.hgr", profile.name()));
            let h = profile.generate(seed);
            if let Err(e) = io::save_edge_list(&h, &out_path) {
                return fail(&format!("cannot write {out_path}: {e}"));
            }
            eprintln!(
                "wrote {} ({} vertices, {} edges) to {out_path}",
                profile.name(),
                h.num_vertices(),
                h.num_edges()
            );
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}
