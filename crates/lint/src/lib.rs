//! `hyperline-lint` — workspace static analyzer.
//!
//! Grown from a token/line matcher into a real analyzer: a std-only
//! lexer ([`lexer`]) and tolerant recursive-descent parser ([`parser`])
//! cover every `.rs` file in the workspace (asserted by the self-parse
//! test), feeding a symbol table and call graph ([`callgraph`]) for the
//! interprocedural rules ([`rules`]). The original line rules live in
//! [`lines`].
//!
//! Rules:
//! * **HL001** — every non-`Relaxed` atomic ordering must carry an
//!   adjacent `// ordering:` comment explaining the fence.
//! * **HL002** — no `partial_cmp(..).unwrap()`; floats compare with
//!   `total_cmp`.
//! * **HL003** — no `unsafe` anywhere in the workspace, except the
//!   sanctioned syscall shim `crates/server/src/sys.rs`.
//! * **HL004** — kernel crates (`graph`, `slinegraph`, `sparse`) stay
//!   clock-free.
//! * **HL005** — fallback: no `.unwrap()` / `.expect(` in
//!   `crates/server/src` files the parser could not resolve.
//! * **HL006** — no external dependencies in any `Cargo.toml`.
//! * **HL007** — no panic sink reachable from a `// lint: request-root`
//!   function via the call graph (full chain reported per finding).
//! * **HL008** — no cycles in the static lock-acquisition graph.
//! * **HL009** — every Release store on an atomic field has a matching
//!   Acquire load site, and vice versa.
//! * **HL010** — every `unsafe` block carries an adjacent
//!   `// safety:` comment justifying its soundness.
//!
//! Suppressions live in `scripts/lint_allow.txt`, one per line:
//! `RULE <path-substring> <finding-substring-or-*> # justification`.
//! HL007 entries key on the space-free chain suffix
//! (`<fn>:<sink>`, e.g. `handle_stats:.unwrap()`). Stale entries fail
//! the build.

pub mod callgraph;
pub mod lexer;
pub mod lines;
pub mod parser;
pub mod rules;

use std::cell::Cell;
use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One rule violation.
#[derive(Debug)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`HL001` … `HL010`).
    pub rule: &'static str,
    /// Human- and allowlist-facing description.
    pub what: String,
    /// Remediation hint.
    pub hint: &'static str,
}

/// One `scripts/lint_allow.txt` entry.
pub struct Allow {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Path substring filter.
    pub path: String,
    /// Finding-text substring; `"*"` matches any.
    pub needle: String,
    /// Set once the entry suppressed something (stale detection).
    pub used: Cell<bool>,
    /// Original line, for stale-entry reporting.
    pub raw: String,
}

impl Allow {
    /// Whether this entry suppresses `f` (marks the entry used).
    pub fn matches(&self, f: &Finding) -> bool {
        let hit = self.rule == f.rule
            && f.file.contains(&self.path)
            && (self.needle == "*" || f.what.contains(&self.needle));
        if hit {
            self.used.set(true);
        }
        hit
    }
}

/// Loads the allowlist; exits with status 2 on malformed entries.
pub fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) => out.push(Allow {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                used: Cell::new(false),
                raw: body.to_string(),
            }),
            _ => {
                eprintln!(
                    "scripts/lint_allow.txt:{}: malformed entry `{body}` (want: RULE path substring # why)",
                    i + 1
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Collects lintable files (`.rs` + `Cargo.toml`) under `dir`, skipping
/// build output, dot-directories and test fixture corpora.
pub fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy().into_owned();
        if p.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&p, out);
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(p);
        }
    }
}

/// Per-rule outcome for the summary line and `--json` output.
#[derive(Clone, Copy, Default)]
pub struct RuleStat {
    /// Findings before suppression.
    pub findings: usize,
    /// Wall time spent in the rule (microseconds).
    pub micros: u128,
}

/// Full analyzer output over one source set.
pub struct Report {
    /// All findings, sorted by (file, line, rule), before suppression.
    pub findings: Vec<Finding>,
    /// Per-phase stats in execution order (`parse`, `callgraph`,
    /// `HL001`…`HL010`).
    pub stats: Vec<(&'static str, RuleStat)>,
    /// Number of `.rs` sources analyzed.
    pub rs_files: usize,
    /// Number of manifests analyzed.
    pub manifests: usize,
    /// Files whose lex/parse failed (line-rule fallback applies there).
    pub parse_failures: Vec<String>,
    /// Call sites that resolved to no workspace function.
    pub unresolved_calls: usize,
    /// HL007 root/reachability counts.
    pub panics: rules::panics::PanicsInfo,
    /// Distinct lock-order edges (HL008) and atomic fields (HL009).
    pub lock_edges: usize,
    /// Distinct atomic fields pooled by HL009.
    pub atomic_fields: usize,
    /// Total analyzer wall time (microseconds).
    pub total_micros: u128,
}

fn timed<F: FnOnce(&mut Vec<Finding>)>(
    name: &'static str,
    findings: &mut Vec<Finding>,
    stats: &mut Vec<(&'static str, RuleStat)>,
    f: F,
) {
    let before = findings.len();
    let t = Instant::now();
    f(findings);
    stats.push((
        name,
        RuleStat {
            findings: findings.len() - before,
            micros: t.elapsed().as_micros(),
        },
    ));
}

/// Runs every rule over in-memory sources (`(repo-relative path,
/// contents)`); the entry point for both the CLI and the fixture tests.
pub fn analyze(sources: &[(String, String)]) -> Report {
    let t_total = Instant::now();
    let mut findings = Vec::new();
    let mut stats: Vec<(&'static str, RuleStat)> = Vec::new();

    let rs: Vec<&(String, String)> = sources.iter().filter(|(p, _)| p.ends_with(".rs")).collect();
    let manifests: Vec<&(String, String)> = sources
        .iter()
        .filter(|(p, _)| p.ends_with("Cargo.toml"))
        .collect();

    let t = Instant::now();
    let asts: Vec<parser::FileAst> = rs.iter().map(|(p, s)| parser::parse_file(p, s)).collect();
    let ctxs: Vec<lines::LineCtx> = rs.iter().map(|(p, s)| lines::line_ctx(p, s)).collect();
    stats.push((
        "parse",
        RuleStat {
            findings: 0,
            micros: t.elapsed().as_micros(),
        },
    ));
    let parse_failures: Vec<String> = asts
        .iter()
        .filter(|a| !a.errors.is_empty())
        .map(|a| a.path.clone())
        .collect();
    let failed: HashSet<&str> = parse_failures.iter().map(|s| s.as_str()).collect();

    timed("HL001", &mut findings, &mut stats, |f| {
        for ctx in &ctxs {
            lines::hl001(ctx, f);
        }
    });
    timed("HL002", &mut findings, &mut stats, |f| {
        for ctx in &ctxs {
            lines::hl002(ctx, f);
        }
    });
    timed("HL003", &mut findings, &mut stats, |f| {
        for ctx in &ctxs {
            lines::hl003(ctx, f);
        }
    });
    timed("HL004", &mut findings, &mut stats, |f| {
        for ctx in &ctxs {
            lines::hl004(ctx, f);
        }
    });
    // HL005 is the parse-fallback: line-level panic matching only where
    // the call-graph rule (HL007) has no AST to work with.
    timed("HL005", &mut findings, &mut stats, |f| {
        for ctx in ctxs.iter().filter(|c| failed.contains(c.rel.as_str())) {
            lines::hl005(ctx, f);
        }
    });
    timed("HL006", &mut findings, &mut stats, |f| {
        for (p, s) in &manifests {
            lines::lint_manifest(p, s, f);
        }
    });
    timed("HL010", &mut findings, &mut stats, |f| {
        for ctx in &ctxs {
            lines::hl010(ctx, f);
        }
    });

    let t = Instant::now();
    let graph = callgraph::CallGraph::build(&asts);
    stats.push((
        "callgraph",
        RuleStat {
            findings: 0,
            micros: t.elapsed().as_micros(),
        },
    ));

    let mut panics_info = rules::panics::PanicsInfo::default();
    timed("HL007", &mut findings, &mut stats, |f| {
        panics_info = rules::panics::run(&graph, f);
    });
    let mut lock_edges = 0usize;
    timed("HL008", &mut findings, &mut stats, |f| {
        lock_edges = rules::locks::run(&graph, f);
    });
    let mut atomic_fields = 0usize;
    timed("HL009", &mut findings, &mut stats, |f| {
        atomic_fields = rules::atomics::run(&graph, f);
    });

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Report {
        findings,
        stats,
        rs_files: rs.len(),
        manifests: manifests.len(),
        parse_failures,
        unresolved_calls: graph.unresolved,
        panics: panics_info,
        lock_edges,
        atomic_fields,
        total_micros: t_total.elapsed().as_micros(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn hl005_applies_only_to_parse_failed_server_files() {
        // Parseable server file with an unwrap: HL007's job (and with a
        // root present + unreachable fn, it stays silent), HL005 silent.
        let parseable = src(
            "crates/server/src/ok.rs",
            "// lint: request-root\nfn root() {}\nfn cold(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let report = analyze(&[parseable.clone()]);
        assert!(
            report.findings.is_empty(),
            "{:?}",
            report
                .findings
                .iter()
                .map(|f| (&f.file, f.line, f.rule))
                .collect::<Vec<_>>()
        );
        // Same file with a top-level syntax error: parser bails, HL005
        // fallback takes over conservatively.
        let broken = src(
            "crates/server/src/broken.rs",
            "// lint: request-root\nfn root() {}\nlet stray = 1;\nfn cold(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let report = analyze(&[parseable, broken]);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["HL005"], "{:?}", report.parse_failures);
        assert_eq!(report.parse_failures, vec!["crates/server/src/broken.rs"]);
    }

    #[test]
    fn stats_cover_every_rule_in_order() {
        let report = analyze(&[src("crates/x/src/a.rs", "fn f() {}\n")]);
        let names: Vec<&str> = report.stats.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "parse",
                "HL001",
                "HL002",
                "HL003",
                "HL004",
                "HL005",
                "HL006",
                "HL010",
                "callgraph",
                "HL007",
                "HL008",
                "HL009"
            ]
        );
    }

    #[test]
    fn json_escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
