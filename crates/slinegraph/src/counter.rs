//! Overlap-count accumulators — the paper's "main performance criterion"
//! data structure (§III-F).
//!
//! Algorithm 2 maintains, per source hyperedge `e_i`, a running count of
//! shared vertices with every 2-hop neighbor `e_j`. The paper discusses
//! the trade-off between *dynamically allocated* hashmaps (fresh per
//! iteration; wins on sparse-overlap inputs) and *pre-allocated
//! thread-local* storage (reset between iterations; wins on dense-overlap
//! inputs like Web). Both appear here, plus a dense-array counter with a
//! touched list, so the choice is measurable (`benches/counter_ablation`).

use hyperline_util::fxhash::FxHashMap;

/// Accumulates counts for one source edge at a time.
///
/// Usage per source edge `i`: any number of [`OverlapCounter::bump`]
/// calls, then one [`OverlapCounter::drain`], which emits the pairs with
/// count ≥ `s` and resets the counter for the next source edge.
pub trait OverlapCounter {
    /// Increments the overlap count of 2-hop neighbor `j`.
    fn bump(&mut self, j: u32);

    /// Emits `(i, j)` for every `j` with count ≥ `s`, then resets.
    fn drain(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32)>);

    /// Like [`OverlapCounter::drain`] but also reports the count (the
    /// s-line-graph edge weight, `inc(e_i, e_j)`).
    fn drain_weighted(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32, u32)>);

    /// Visits all `(j, count)` pairs, then resets (ensemble Algorithm 3
    /// stores the raw counts rather than filtering).
    fn drain_counts(&mut self, out: &mut Vec<(u32, u32)>);
}

/// Which counter implementation an algorithm run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterKind {
    /// A fresh hashmap is allocated for every source hyperedge and dropped
    /// after its drain — the paper's default for most datasets.
    #[default]
    DynamicMap,
    /// One thread-local hashmap, cleared (capacity kept) between source
    /// hyperedges — the paper's pre-allocated TLS choice for dense inputs.
    ReusedMap,
    /// A dense `u32` array indexed by hyperedge ID with a touched list —
    /// O(1) bumps with no hashing at the cost of O(m) memory per worker.
    DenseArray,
}

impl CounterKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [CounterKind; 3] = [
        CounterKind::DynamicMap,
        CounterKind::ReusedMap,
        CounterKind::DenseArray,
    ];

    /// Short label for benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            CounterKind::DynamicMap => "dynamic-map",
            CounterKind::ReusedMap => "reused-map",
            CounterKind::DenseArray => "dense-array",
        }
    }
}

/// Fresh hashmap per source edge (see [`CounterKind::DynamicMap`]).
#[derive(Debug, Default)]
pub struct DynamicMapCounter {
    map: FxHashMap<u32, u32>,
}

impl DynamicMapCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OverlapCounter for DynamicMapCounter {
    #[inline]
    fn bump(&mut self, j: u32) {
        *self.map.entry(j).or_insert(0) += 1;
    }

    fn drain(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32)>) {
        for (&j, &n) in &self.map {
            if n >= s {
                out.push((i, j));
            }
        }
        // Dynamic semantics: drop the allocation, start fresh.
        self.map = FxHashMap::default();
    }

    fn drain_weighted(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32, u32)>) {
        for (&j, &n) in &self.map {
            if n >= s {
                out.push((i, j, n));
            }
        }
        self.map = FxHashMap::default();
    }

    fn drain_counts(&mut self, out: &mut Vec<(u32, u32)>) {
        out.extend(self.map.iter().map(|(&j, &n)| (j, n)));
        self.map = FxHashMap::default();
    }
}

/// One reused hashmap, cleared between source edges (see
/// [`CounterKind::ReusedMap`]).
#[derive(Debug, Default)]
pub struct ReusedMapCounter {
    map: FxHashMap<u32, u32>,
}

impl ReusedMapCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl OverlapCounter for ReusedMapCounter {
    #[inline]
    fn bump(&mut self, j: u32) {
        *self.map.entry(j).or_insert(0) += 1;
    }

    fn drain(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32)>) {
        for (&j, &n) in &self.map {
            if n >= s {
                out.push((i, j));
            }
        }
        self.map.clear();
    }

    fn drain_weighted(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32, u32)>) {
        for (&j, &n) in &self.map {
            if n >= s {
                out.push((i, j, n));
            }
        }
        self.map.clear();
    }

    fn drain_counts(&mut self, out: &mut Vec<(u32, u32)>) {
        out.extend(self.map.iter().map(|(&j, &n)| (j, n)));
        self.map.clear();
    }
}

/// Dense array + touched list (see [`CounterKind::DenseArray`]).
#[derive(Debug)]
pub struct DenseArrayCounter {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl DenseArrayCounter {
    /// Creates a counter over hyperedge IDs `0..num_edges`.
    pub fn new(num_edges: usize) -> Self {
        Self {
            counts: vec![0; num_edges],
            touched: Vec::new(),
        }
    }
}

impl OverlapCounter for DenseArrayCounter {
    #[inline]
    fn bump(&mut self, j: u32) {
        let slot = &mut self.counts[j as usize];
        if *slot == 0 {
            self.touched.push(j);
        }
        *slot += 1;
    }

    fn drain(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32)>) {
        for &j in &self.touched {
            if self.counts[j as usize] >= s {
                out.push((i, j));
            }
            self.counts[j as usize] = 0;
        }
        self.touched.clear();
    }

    fn drain_weighted(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32, u32)>) {
        for &j in &self.touched {
            let n = self.counts[j as usize];
            if n >= s {
                out.push((i, j, n));
            }
            self.counts[j as usize] = 0;
        }
        self.touched.clear();
    }

    fn drain_counts(&mut self, out: &mut Vec<(u32, u32)>) {
        for &j in &self.touched {
            out.push((j, self.counts[j as usize]));
            self.counts[j as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Runtime-dispatched counter for the strategy sweeps.
#[derive(Debug)]
pub enum AnyCounter {
    /// See [`DynamicMapCounter`].
    Dynamic(DynamicMapCounter),
    /// See [`ReusedMapCounter`].
    Reused(ReusedMapCounter),
    /// See [`DenseArrayCounter`].
    Dense(DenseArrayCounter),
}

impl AnyCounter {
    /// Builds the counter selected by `kind` for a hypergraph with
    /// `num_edges` hyperedges.
    pub fn new(kind: CounterKind, num_edges: usize) -> Self {
        match kind {
            CounterKind::DynamicMap => AnyCounter::Dynamic(DynamicMapCounter::new()),
            CounterKind::ReusedMap => AnyCounter::Reused(ReusedMapCounter::new()),
            CounterKind::DenseArray => AnyCounter::Dense(DenseArrayCounter::new(num_edges)),
        }
    }
}

impl OverlapCounter for AnyCounter {
    #[inline]
    fn bump(&mut self, j: u32) {
        match self {
            AnyCounter::Dynamic(c) => c.bump(j),
            AnyCounter::Reused(c) => c.bump(j),
            AnyCounter::Dense(c) => c.bump(j),
        }
    }

    fn drain(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32)>) {
        match self {
            AnyCounter::Dynamic(c) => c.drain(i, s, out),
            AnyCounter::Reused(c) => c.drain(i, s, out),
            AnyCounter::Dense(c) => c.drain(i, s, out),
        }
    }

    fn drain_weighted(&mut self, i: u32, s: u32, out: &mut Vec<(u32, u32, u32)>) {
        match self {
            AnyCounter::Dynamic(c) => c.drain_weighted(i, s, out),
            AnyCounter::Reused(c) => c.drain_weighted(i, s, out),
            AnyCounter::Dense(c) => c.drain_weighted(i, s, out),
        }
    }

    fn drain_counts(&mut self, out: &mut Vec<(u32, u32)>) {
        match self {
            AnyCounter::Dynamic(c) => c.drain_counts(out),
            AnyCounter::Reused(c) => c.drain_counts(out),
            AnyCounter::Dense(c) => c.drain_counts(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(counter: &mut dyn OverlapCounter) {
        // Source edge 7 sees: j=3 twice, j=5 once, j=9 three times.
        for j in [3u32, 5, 9, 3, 9, 9] {
            counter.bump(j);
        }
        let mut out = Vec::new();
        counter.drain(7, 2, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(7, 3), (7, 9)]);

        // Counter must be reset now.
        counter.bump(3);
        let mut out = Vec::new();
        counter.drain(8, 1, &mut out);
        assert_eq!(out, vec![(8, 3)]);

        // Weighted drain.
        for j in [4u32, 4, 4, 6] {
            counter.bump(j);
        }
        let mut out = Vec::new();
        counter.drain_weighted(1, 2, &mut out);
        assert_eq!(out, vec![(1, 4, 3)]);

        // Raw counts drain.
        for j in [2u32, 2, 0] {
            counter.bump(j);
        }
        let mut out = Vec::new();
        counter.drain_counts(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn dynamic_map_counter() {
        exercise(&mut DynamicMapCounter::new());
    }

    #[test]
    fn reused_map_counter() {
        exercise(&mut ReusedMapCounter::new());
    }

    #[test]
    fn dense_array_counter() {
        exercise(&mut DenseArrayCounter::new(10));
    }

    #[test]
    fn any_counter_all_kinds() {
        for kind in CounterKind::ALL {
            exercise(&mut AnyCounter::new(kind, 10));
        }
    }

    #[test]
    fn drain_with_high_s_emits_nothing() {
        for kind in CounterKind::ALL {
            let mut c = AnyCounter::new(kind, 4);
            c.bump(1);
            c.bump(1);
            let mut out = Vec::new();
            c.drain(0, 3, &mut out);
            assert!(out.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<&str> =
            CounterKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 3);
    }
}
