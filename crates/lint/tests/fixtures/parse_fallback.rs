// Fixture: a file the parser cannot resolve (stray item-level
// statement). HL007 has no AST here, so the HL005 line fallback must
// still flag the unwrap conservatively.
fn fine() -> u32 {
    3
}

let stray = 1;

fn later(x: Option<u32>) -> u32 {
    x.unwrap()
}
