//! Structured parallelism on `std::thread::scope` — the workspace's
//! replacement for rayon.
//!
//! The paper's algorithms only ever need one shape of parallelism: "run N
//! workers over a range and merge their results". Scoped threads cover
//! that without a work-stealing runtime or any external dependency:
//!
//! * [`scope_workers`] — exactly N workers, one call each (the primitive
//!   everything else builds on; [`crate::parallel`] callers with
//!   per-worker state use it directly);
//! * [`par_map_range`] / [`par_map_range_init`] — ordered map over
//!   `0..n`, dynamically load-balanced in chunks;
//! * [`par_map_slice`] — ordered map over a slice;
//! * [`par_for_each_range`] — side-effect loop over `0..n` (the body
//!   synchronizes through atomics/locks as needed);
//! * [`par_for_each_mut`] / [`par_for_each_indexed_mut`] — in-place loop
//!   over disjoint `&mut` elements;
//! * [`par_sort_unstable`] / [`par_sort_unstable_by_key`] — parallel
//!   sorting (sorted runs + parallel multi-way merge), with output
//!   **independent of the worker count**;
//! * [`merge_sorted_runs`] — k-way merge of already-sorted runs (the
//!   shape per-worker emissions have under a blocked partition);
//! * [`exclusive_prefix_sum`] — blocked parallel prefix sum (the CSR
//!   offsets step).
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned per-call-site with [`with_threads`] (a thread-local
//! override, which is how the scaling benchmarks sweep 1..cores).

use crate::sync::atomic::{AtomicUsize, Ordering};
use std::cell::Cell;
use std::cmp::Ordering as CmpOrdering;

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The worker count parallel operations on this thread will use:
/// the innermost [`with_threads`] override, else the machine's available
/// parallelism (at least 1).
pub fn num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over > 0 {
        over
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `f` with [`num_threads`] pinned to `n` on the current thread
/// (parallel operations started inside `f` use `n` workers). Nested
/// overrides stack; the previous value is restored on exit (also on
/// panic).
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Spawns exactly `num_workers` scoped workers running `work(worker_id)`
/// and returns their results indexed by worker ID. Worker 0 runs on the
/// calling thread.
///
/// # Panics
/// Propagates the first worker panic.
pub fn scope_workers<T: Send>(num_workers: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let num_workers = num_workers.max(1);
    if num_workers == 1 {
        return vec![work(0)];
    }
    let work = &work;
    // Spawned workers inherit the caller's telemetry scope so spans
    // entered inside parallel loops land in the same stage report, and
    // the caller's cancellation token so kernel chunk loops can poll
    // their request's deadline flag.
    let ctx = crate::telemetry::current_context();
    let cancel = crate::cancel::current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..num_workers)
            .map(|w| {
                let ctx = ctx.clone();
                let cancel = cancel.clone();
                scope.spawn(move || {
                    crate::telemetry::with_context(ctx, || {
                        crate::cancel::with_token(cancel, || work(w))
                    })
                })
            })
            .collect();
        let mut results = Vec::with_capacity(num_workers);
        results.push(work(0));
        for handle in handles {
            results.push(match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            });
        }
        results
    })
}

/// Chunk size giving each worker ~8 grabs: dynamic enough to balance
/// skewed items, coarse enough to keep the cursor cold.
fn default_chunk(n: usize, workers: usize) -> usize {
    (n / (workers * 8)).max(1)
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
/// Work is claimed dynamically in chunks from an atomic cursor.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    par_map_range_init(n, || (), |(), i| f(i))
}

/// Like [`par_map_range`] with per-worker scratch state: `init()` runs
/// once per worker and `f(&mut state, i)` maps index `i`. Results come
/// back in index order (rayon's `map_init` shape).
pub fn par_map_range_init<S, U: Send>(
    n: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> U + Sync,
) -> Vec<U> {
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = default_chunk(n, workers);
    let cursor = AtomicUsize::new(0);
    let poll = crate::cancel::Poll::capture();
    // Each worker returns contiguous (start, results) runs; stitching them
    // back in start order restores the index order without shared writes.
    let mut runs: Vec<(usize, Vec<U>)> = scope_workers(workers, |_| {
        let mut state = init();
        let mut out: Vec<(usize, Vec<U>)> = Vec::new();
        loop {
            if poll.is_cancelled() {
                break;
            }
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            out.push((start, (start..end).map(|i| f(&mut state, i)).collect()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    // A cancelled run produced partial output: unwind here, before any
    // caller can observe an incomplete result vector.
    crate::cancel::checkpoint();
    runs.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(n);
    for (_, mut run) in runs {
        result.append(&mut run);
    }
    debug_assert_eq!(result.len(), n);
    result
}

/// Maps `f` over a slice in parallel, returning results in input order.
pub fn par_map_slice<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Runs `f(i)` for every `i` in `0..n` in parallel (unordered;
/// side-effecting bodies synchronize through atomics or locks).
pub fn par_for_each_range(n: usize, f: impl Fn(usize) + Sync) {
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    let chunk = default_chunk(n, workers);
    let cursor = AtomicUsize::new(0);
    let poll = crate::cancel::Poll::capture();
    scope_workers(workers, |_| loop {
        if poll.is_cancelled() {
            return;
        }
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            return;
        }
        for i in start..(start + chunk).min(n) {
            f(i);
        }
    });
    // Partial side effects from a cancelled run must not be observed:
    // unwind to the flight's catch_unwind before returning.
    crate::cancel::checkpoint();
}

/// Runs `f` on every element of `items` in parallel (disjoint `&mut`
/// access, distributed in contiguous chunks).
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    par_for_each_indexed_mut(items, |_, item| f(item));
}

/// Like [`par_for_each_mut`], also passing each element's index.
pub fn par_for_each_indexed_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, block) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (k, item) in block.iter_mut().enumerate() {
                    f(c * chunk + k, item);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------
// Parallel sorting and merging
// ---------------------------------------------------------------------
//
// The sorts below are deterministic **independent of the worker count**:
// run boundaries are a function of the input length alone, each run is
// sorted serially (deterministic), and the multi-way merge breaks ties
// on run index. The ambient worker count only decides how much of that
// fixed work happens concurrently — which is what lets the s-line-graph
// pipeline promise byte-identical output for any `--threads`.

/// Inputs shorter than this sort serially. Decided by length alone so
/// the output never depends on the ambient worker count.
const PAR_SORT_MIN: usize = 1 << 15;

/// Number of sorted runs for a length-`n` parallel sort: ~64 Ki elements
/// per run, at least 2, at most 64. A function of `n` only, so run
/// boundaries (and with them the exact output of by-key sorts over
/// duplicate keys) are identical for every worker count.
fn run_count(n: usize) -> usize {
    (n >> 16).clamp(2, 64)
}

/// Sorts `v` in parallel. Equivalent to `v.sort_unstable()` (for `T:
/// Ord`, equal elements are indistinguishable), but the post-counting
/// tail this replaces runs on all cores: sorted runs with fixed
/// boundaries, then a splitter-partitioned parallel multi-way merge.
pub fn par_sort_unstable<T: Ord + Clone + Send + Sync>(v: &mut [T]) {
    par_sort_by_impl(v, &T::cmp);
}

/// Sorts `v` in parallel by a key function. Deterministic independent of
/// the worker count: elements with equal keys end up grouped in run
/// order (runs have length-derived boundaries), which is a fixed —
/// though not serial-`sort_unstable_by_key`-identical — permutation.
pub fn par_sort_unstable_by_key<T, K, F>(v: &mut [T], key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by_impl(v, &|a: &T, b: &T| key(a).cmp(&key(b)));
}

/// Parallel sortedness check over fixed-size chunks (including chunk
/// boundaries).
fn par_is_sorted_by<T, F>(v: &[T], cmp: &F) -> bool
where
    T: Sync,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    const CHUNK: usize = 1 << 16;
    let nchunks = v.len().div_ceil(CHUNK).max(1);
    par_map_range(nchunks, |c| {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(v.len());
        v[lo..hi]
            .windows(2)
            .all(|w| cmp(&w[0], &w[1]) != CmpOrdering::Greater)
            && (lo == 0 || hi == lo || cmp(&v[lo - 1], &v[lo]) != CmpOrdering::Greater)
    })
    .into_iter()
    .all(|ok| ok)
}

fn par_sort_by_impl<T, F>(v: &mut [T], cmp: &F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = v.len();
    if n < PAR_SORT_MIN {
        v.sort_unstable_by(cmp);
        return;
    }
    // Already-sorted inputs are common on the hot paths (per-worker
    // emissions arrive presorted; ID restoration under the identity
    // relabeling preserves order): one cheap parallel scan beats
    // re-sorting, and keeping it a pure function of the content keeps
    // the output worker-count independent.
    if par_is_sorted_by(v, cmp) {
        return;
    }
    let runs = run_count(n);
    let bounds: Vec<usize> = (0..=runs).map(|r| r * n / runs).collect();
    let mut aux: Vec<T> = v.to_vec();
    {
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(runs);
        let mut rest: &mut [T] = &mut aux;
        for r in 0..runs {
            let (head, tail) = rest.split_at_mut(bounds[r + 1] - bounds[r]);
            slices.push(head);
            rest = tail;
        }
        par_for_each_mut(&mut slices, |run| run.sort_unstable_by(cmp));
    }
    let run_refs: Vec<&[T]> = bounds.windows(2).map(|w| &aux[w[0]..w[1]]).collect();
    merge_runs_into(&run_refs, v, cmp);
}

/// Merges already-sorted runs into one sorted vector, in parallel. Ties
/// keep earlier-run elements first (run order, then position), so the
/// result is the unique stable k-way merge — independent of the worker
/// count. This is the cheap path for merging per-worker emissions, which
/// under blocked-partition ownership are already sorted (or near-sorted)
/// runs.
///
/// Runs must each be sorted ascending (debug-checked).
pub fn merge_sorted_runs<T: Ord + Clone + Send + Sync>(mut runs: Vec<Vec<T>>) -> Vec<T> {
    runs.retain(|r| !r.is_empty());
    debug_assert!(runs.iter().all(|r| r.is_sorted()), "runs must be sorted");
    match runs.len() {
        0 => Vec::new(),
        1 => runs.pop().unwrap(),
        // Mutually ordered runs (each starts at or after the previous
        // one's end — what blocked-partition worker emissions look like)
        // concatenate without a single comparison.
        _ if runs
            .windows(2)
            .all(|w| w[0].last().unwrap() <= w[1].first().unwrap()) =>
        {
            let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
            for mut r in runs {
                out.append(&mut r);
            }
            out
        }
        _ => {
            let n = runs.iter().map(Vec::len).sum();
            // Concatenating first yields an initialized buffer of the
            // right length that `split_at_mut` can partition for the
            // parallel merge to overwrite.
            let mut out: Vec<T> = Vec::with_capacity(n);
            for r in &runs {
                out.extend_from_slice(r);
            }
            let refs: Vec<&[T]> = runs.iter().map(Vec::as_slice).collect();
            merge_runs_into(&refs, &mut out, &T::cmp);
            out
        }
    }
}

/// One parallel merge segment: the per-run input ranges between two
/// splitters plus the output slice they merge into.
struct MergeSegment<'a, T> {
    inputs: Vec<&'a [T]>,
    out: &'a mut [T],
}

/// Merges sorted `runs` into `out` (lengths must match). Ties break on
/// run index, so the output is unique regardless of how the work is
/// partitioned. Parallelism comes from splitter-partitioning: sampled
/// splitter elements cut every run at the same key boundary, giving
/// per-worker segments that merge into disjoint output slices.
fn merge_runs_into<T, F>(runs: &[&[T]], out: &mut [T], cmp: &F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n: usize = runs.iter().map(|r| r.len()).sum();
    debug_assert_eq!(n, out.len());
    let segments = num_threads();
    if segments <= 1 || n < PAR_SORT_MIN {
        merge_segment(runs, out, cmp);
        return;
    }
    // Sample candidate splitters evenly from every run; sorting the
    // sample and picking evenly spaced elements approximates balanced
    // segment sizes.
    let mut samples: Vec<T> = Vec::new();
    for run in runs {
        let take = run.len().min(2 * segments);
        for t in 0..take {
            samples.push(run[t * run.len() / take].clone());
        }
    }
    samples.sort_unstable_by(cmp);
    let splitters: Vec<T> = (1..segments)
        .map(|k| samples[k * samples.len() / segments].clone())
        .collect();
    // Cut every run at each splitter: elements `< splitter` go left,
    // `>= splitter` right. Equal-key groups stay whole within one
    // segment, so segment-local merges compose to the global merge.
    let cuts: Vec<Vec<usize>> = runs
        .iter()
        .map(|run| {
            let mut c = Vec::with_capacity(segments + 1);
            c.push(0);
            for sp in &splitters {
                c.push(run.partition_point(|x| cmp(x, sp) == CmpOrdering::Less));
            }
            c.push(run.len());
            c
        })
        .collect();
    let mut segs: Vec<MergeSegment<'_, T>> = Vec::with_capacity(segments);
    let mut rest: &mut [T] = out;
    for k in 0..segments {
        let len: usize = cuts.iter().map(|c| c[k + 1] - c[k]).sum();
        let (head, tail) = rest.split_at_mut(len);
        rest = tail;
        segs.push(MergeSegment {
            inputs: runs
                .iter()
                .zip(&cuts)
                .map(|(run, c)| &run[c[k]..c[k + 1]])
                .collect(),
            out: head,
        });
    }
    par_for_each_mut(&mut segs, |seg| merge_segment(&seg.inputs, seg.out, cmp));
}

/// Serial k-way merge of sorted inputs into `out` by pairwise folding
/// (adjacent pairing preserves input order, and two-way merges take the
/// left input on ties — together equivalent to run-index tie-breaking).
fn merge_segment<T, F>(inputs: &[&[T]], out: &mut [T], cmp: &F)
where
    T: Clone,
    F: Fn(&T, &T) -> CmpOrdering,
{
    let active: Vec<&[T]> = inputs.iter().copied().filter(|s| !s.is_empty()).collect();
    match active.len() {
        0 => return,
        1 => {
            out.clone_from_slice(active[0]);
            return;
        }
        2 => {
            merge_two_into(active[0], active[1], out, cmp);
            return;
        }
        _ => {}
    }
    // First round borrows; later rounds fold owned buffers.
    let mut cur: Vec<Vec<T>> = active
        .chunks(2)
        .map(|pair| {
            if pair.len() == 1 {
                pair[0].to_vec()
            } else {
                let mut m = vec![pair[0][0].clone(); pair[0].len() + pair[1].len()];
                merge_two_into(pair[0], pair[1], &mut m, cmp);
                m
            }
        })
        .collect();
    while cur.len() > 2 {
        let mut next = Vec::with_capacity(cur.len().div_ceil(2));
        let mut it = cur.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let mut m = vec![a[0].clone(); a.len() + b.len()];
                    merge_two_into(&a, &b, &mut m, cmp);
                    next.push(m);
                }
                None => next.push(a),
            }
        }
        cur = next;
    }
    merge_two_into(&cur[0], &cur[1], out, cmp);
}

/// Merges two sorted slices into `out` (`out.len() == a.len() +
/// b.len()`); ties take from `a` first.
fn merge_two_into<T, F>(a: &[T], b: &[T], out: &mut [T], cmp: &F)
where
    T: Clone,
    F: Fn(&T, &T) -> CmpOrdering,
{
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let take_a = i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != CmpOrdering::Greater);
        if take_a {
            slot.clone_from(&a[i]);
            i += 1;
        } else {
            slot.clone_from(&b[j]);
            j += 1;
        }
    }
}

/// Parallel `filter_map` over fixed-size chunks, concatenated in input
/// order. Chunk boundaries derive from the length alone, so the output
/// is worker-count independent — the shared shape of the clean and
/// filtration passes. Small inputs run serially.
pub fn par_filter_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync,
{
    const CHUNK: usize = 1 << 16;
    if items.len() <= CHUNK {
        return items.iter().filter_map(&f).collect();
    }
    let nchunks = items.len().div_ceil(CHUNK);
    let parts: Vec<Vec<U>> = par_map_range(nchunks, |c| {
        items[c * CHUNK..((c + 1) * CHUNK).min(items.len())]
            .iter()
            .filter_map(&f)
            .collect()
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for mut p in parts {
        out.append(&mut p);
    }
    out
}

/// In-place exclusive prefix sum: `v[i]` becomes the sum of the original
/// `v[..i]`; returns the grand total. Blocked-parallel (per-block sums,
/// a serial scan over block totals, then a parallel offset pass), which
/// is the offsets step of parallel CSR construction.
pub fn exclusive_prefix_sum(v: &mut [usize]) -> usize {
    let n = v.len();
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n < (1 << 14) {
        let mut acc = 0usize;
        for x in v.iter_mut() {
            let t = *x;
            *x = acc;
            acc += t;
        }
        return acc;
    }
    let chunk = n.div_ceil(workers);
    let sums: Vec<usize> = {
        let blocks: Vec<&[usize]> = v.chunks(chunk).collect();
        par_map_slice(&blocks, |b| b.iter().sum())
    };
    let mut bases = Vec::with_capacity(sums.len());
    let mut acc = 0usize;
    for s in sums {
        bases.push(acc);
        acc += s;
    }
    let mut blocks: Vec<&mut [usize]> = v.chunks_mut(chunk).collect();
    par_for_each_indexed_mut(&mut blocks, |i, block| {
        let mut a = bases[i];
        for x in block.iter_mut() {
            let t = *x;
            *x = a;
            a += t;
        }
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicU64;

    #[test]
    fn map_range_preserves_order() {
        let out = par_map_range(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        assert!(par_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        // State is a counter: the sum over all workers must equal n.
        let counts = par_map_range_init(
            500,
            || 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        assert_eq!(counts.len(), 500);
    }

    #[test]
    fn map_slice_matches_serial() {
        let items: Vec<u32> = (0..777).collect();
        assert_eq!(
            par_map_slice(&items, |&x| x + 1),
            items.iter().map(|&x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn for_each_range_visits_all_once() {
        let n = 1013;
        let sum = AtomicU64::new(0);
        par_for_each_range(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (n as u64 * (n as u64 - 1)) / 2);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let mut v: Vec<usize> = vec![0; 503];
        par_for_each_indexed_mut(&mut v, |i, slot| *slot = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
        par_for_each_mut(&mut v, |x| *x *= 2);
        assert_eq!(v[10], 22);
    }

    #[test]
    fn scope_workers_ids_and_results() {
        let out = scope_workers(6, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(scope_workers(0, |w| w), vec![0], "clamps to one worker");
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = num_threads();
        let inside = with_threads(3, num_threads);
        assert_eq!(inside, 3);
        assert_eq!(num_threads(), outside);
        // Nested overrides stack.
        with_threads(2, || {
            assert_eq!(num_threads(), 2);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 2);
        });
        // Zero clamps to one.
        assert_eq!(with_threads(0, num_threads), 1);
    }

    /// A deterministic xorshift so the adversarial sort inputs need no
    /// external crate (util has no dependencies).
    fn xorshift_stream(seed: u64, n: usize) -> impl Iterator<Item = u64> {
        let mut x = seed | 1;
        std::iter::repeat_with(move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .take(n)
    }

    #[test]
    fn par_sort_matches_serial_on_adversarial_inputs() {
        let n = PAR_SORT_MIN * 3 + 17; // force the parallel path
        let random: Vec<u64> = xorshift_stream(42, n).collect();
        let presorted: Vec<u64> = (0..n as u64).collect();
        let reversed: Vec<u64> = (0..n as u64).rev().collect();
        let duplicates: Vec<u64> = xorshift_stream(7, n).map(|x| x % 13).collect();
        let all_equal: Vec<u64> = vec![9; n];
        let sawtooth: Vec<u64> = (0..n as u64).map(|i| i % 101).collect();
        for (name, input) in [
            ("random", random),
            ("presorted", presorted),
            ("reversed", reversed),
            ("duplicates", duplicates),
            ("all_equal", all_equal),
            ("sawtooth", sawtooth),
            ("empty", Vec::new()),
            ("single", vec![5]),
        ] {
            let mut expect = input.clone();
            expect.sort_unstable();
            let mut got = input.clone();
            par_sort_unstable(&mut got);
            assert_eq!(got, expect, "{name}");
            // And the small-input serial path through the same API.
            let mut small: Vec<u64> = input.iter().copied().take(100).collect();
            let mut small_expect = small.clone();
            small_expect.sort_unstable();
            par_sort_unstable(&mut small);
            assert_eq!(small, small_expect, "{name} (small)");
        }
    }

    #[test]
    fn par_sort_identical_across_worker_counts() {
        let n = PAR_SORT_MIN * 2 + 3;
        // Pairs with heavy key duplication: the by-key sort must place
        // equal-key elements identically for every worker count.
        let input: Vec<(u64, u64)> = xorshift_stream(3, n)
            .enumerate()
            .map(|(i, x)| (x % 7, i as u64))
            .collect();
        let reference = with_threads(1, || {
            let mut v = input.clone();
            par_sort_unstable_by_key(&mut v, |&(k, _)| k);
            v
        });
        assert!(reference.is_sorted_by_key(|&(k, _)| k));
        for workers in [2usize, 3, 7, 16] {
            let got = with_threads(workers, || {
                let mut v = input.clone();
                par_sort_unstable_by_key(&mut v, |&(k, _)| k);
                v
            });
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn merge_sorted_runs_matches_flatten_and_sort() {
        let sizes = [0usize, 1, 17, 40_000, 3, 25_000];
        let runs: Vec<Vec<u64>> = sizes
            .iter()
            .enumerate()
            .map(|(k, &len)| {
                let mut r: Vec<u64> = xorshift_stream(k as u64 + 1, len)
                    .map(|x| x % 50_000)
                    .collect();
                r.sort_unstable();
                r
            })
            .collect();
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        for workers in [1usize, 4] {
            let got = with_threads(workers, || merge_sorted_runs(runs.clone()));
            assert_eq!(got, expect, "workers={workers}");
        }
        assert!(merge_sorted_runs::<u64>(vec![]).is_empty());
        assert_eq!(merge_sorted_runs(vec![vec![], vec![2, 4], vec![]]), [2, 4]);
    }

    #[test]
    fn exclusive_prefix_sum_matches_serial() {
        for n in [0usize, 1, 5, (1 << 14) + 123, 100_000] {
            let input: Vec<usize> = xorshift_stream(n as u64 + 9, n)
                .map(|x| (x % 100) as usize)
                .collect();
            let mut expect = input.clone();
            let mut acc = 0usize;
            for x in expect.iter_mut() {
                let t = *x;
                *x = acc;
                acc += t;
            }
            for workers in [1usize, 5] {
                let mut got = input.clone();
                let total = with_threads(workers, || exclusive_prefix_sum(&mut got));
                assert_eq!(got, expect, "n={n} workers={workers}");
                assert_eq!(total, acc, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            scope_workers(4, |w| {
                if w == 3 {
                    panic!("boom");
                }
                w
            })
        });
        assert!(result.is_err());
    }
}
