//! Undirected graph storage in CSR form.
//!
//! s-line graphs come out of the overlap stage as edge lists; this type
//! turns them into a CSR adjacency suitable for the Stage-5 metric
//! kernels. Graphs are simple (no self loops, no parallel edges) and may
//! carry per-edge weights (the overlap counts, used for weighted drawings
//! like the paper's Figure 2).

/// An undirected simple graph over vertices `0..num_vertices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list. Self loops are dropped,
    /// duplicate edges (in either orientation) are collapsed.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(
                (a as usize) < num_vertices && (b as usize) < num_vertices,
                "edge ({a},{b}) out of range {num_vertices}"
            );
            if a == b {
                continue;
            }
            clean.push(if a < b { (a, b) } else { (b, a) });
        }
        clean.sort_unstable();
        clean.dedup();
        for &(a, b) in &clean {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; clean.len() * 2];
        let mut cursor = counts;
        for &(a, b) in &clean {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each row receives targets in ascending order of the opposite
        // endpoint *per orientation*; rows are the merge of "b's from
        // (a,b)" (ascending) and "a's from (a,b) with b = row" (ascending),
        // so a final per-row sort is still required.
        let mut g = Self {
            offsets,
            targets,
            num_edges: clean.len(),
        };
        for v in 0..num_vertices {
            let (s, e) = (g.offsets[v], g.offsets[v + 1]);
            g.targets[s..e].sort_unstable();
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(min, max)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Vertices with degree ≥ 1.
    pub fn non_isolated_count(&self) -> usize {
        (0..self.num_vertices() as u32)
            .filter(|&v| self.degree(v) > 0)
            .count()
    }

    /// The subgraph induced by `vertices` (which need not be sorted).
    /// Vertex `i` of the result corresponds to `vertices[i]` after
    /// ascending sort; the sorted ID mapping is returned alongside.
    pub fn induced(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let mut keep: Vec<u32> = vertices.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut rename = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in keep.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for &old in &keep {
            for &w in self.neighbors(old) {
                if old < w && rename[w as usize] != u32::MAX {
                    edges.push((rename[old as usize], rename[w as usize]));
                }
            }
        }
        (Graph::from_edges(keep.len(), &edges), keep)
    }
}

/// A graph plus per-edge weights (overlap counts in the s-line graph).
///
/// Weights are stored per directed arc, aligned with [`Graph::neighbors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    /// The underlying simple graph.
    pub graph: Graph,
    weights: Vec<u32>,
}

impl WeightedGraph {
    /// Builds from weighted undirected edges; duplicate edges keep the
    /// maximum weight.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32, u32)]) -> Self {
        let unweighted: Vec<(u32, u32)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
        let graph = Graph::from_edges(num_vertices, &unweighted);
        let mut weights = vec![0u32; graph.targets.len()];
        for &(a, b, w) in edges {
            if a == b {
                continue;
            }
            for (u, v) in [(a, b), (b, a)] {
                let start = graph.offsets[u as usize];
                let idx = start
                    + graph
                        .neighbors(u)
                        .binary_search(&v)
                        .expect("edge must exist in underlying graph");
                weights[idx] = weights[idx].max(w);
            }
        }
        Self { graph, weights }
    }

    /// Weights aligned with `graph.neighbors(v)`.
    pub fn neighbor_weights(&self, v: u32) -> &[u32] {
        &self.weights[self.graph.offsets[v as usize]..self.graph.offsets[v as usize + 1]]
    }

    /// Weight of edge `{u, v}`, or `None` if absent.
    pub fn weight(&self, u: u32, v: u32) -> Option<u32> {
        let start = self.graph.offsets[u as usize];
        self.graph
            .neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[start + i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(4), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.non_isolated_count(), 4);
    }

    #[test]
    fn self_loops_dropped_duplicates_collapsed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn iter_edges_each_once() {
        let g = triangle_plus_tail();
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = triangle_plus_tail();
        let sum: usize = (0..5u32).map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn weighted_graph_stores_weights() {
        let w = WeightedGraph::from_edges(3, &[(0, 1, 5), (1, 2, 2)]);
        assert_eq!(w.weight(0, 1), Some(5));
        assert_eq!(w.weight(1, 0), Some(5));
        assert_eq!(w.weight(1, 2), Some(2));
        assert_eq!(w.weight(0, 2), None);
        assert_eq!(w.neighbor_weights(1), &[5, 2]);
    }

    #[test]
    fn weighted_duplicates_keep_max() {
        let w = WeightedGraph::from_edges(2, &[(0, 1, 2), (1, 0, 7)]);
        assert_eq!(w.weight(0, 1), Some(7));
        assert_eq!(w.graph.num_edges(), 1);
    }
}
