//! Seeded-random stress variant of the model-checked bitmap-claim unit
//! (`tests/sched_frontier.rs`), runnable under plain `cargo test` with
//! real threads: many workers hammer overlapping vertex sets; every
//! vertex must be claimed by exactly one worker.

use hyperline_graph::frontier::AtomicBits;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn stress_claims_are_unique_per_vertex() {
    let mut seed = 0xb17_5e7u64;
    for round in 0..40 {
        let n = 256u32;
        let workers = 2 + (round % 3);
        let bits = Arc::new(AtomicBits::new(n as usize));
        let claims: Arc<Vec<AtomicU32>> = Arc::new((0..n).map(|_| AtomicU32::new(0)).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let bits = bits.clone();
                let claims = claims.clone();
                let mut rng = splitmix(&mut seed);
                scope.spawn(move || {
                    // Every worker walks all vertices in a seeded order,
                    // so every vertex is contended by every worker.
                    let start = (splitmix(&mut rng) % n as u64) as u32;
                    let stride = (splitmix(&mut rng) % 16) as u32 * 2 + 1; // odd → full cycle mod 256
                    let mut v = start;
                    for _ in 0..n {
                        if bits.claim(v) {
                            claims[v as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        v = (v + stride) % n;
                    }
                });
            }
        });
        for v in 0..n {
            assert_eq!(
                claims[v as usize].load(Ordering::Relaxed),
                1,
                "round {round}: vertex {v} claimed != 1 times"
            );
            assert!(
                bits.get(v),
                "round {round}: vertex {v} bit not set after full sweep"
            );
        }
    }
}
