//! HL009 — release/acquire pairing on atomic fields.
//!
//! Every `Release` (or `AcqRel`/`SeqCst`) store on an atomic field must
//! have at least one `Acquire` (or `AcqRel`/`SeqCst`) load site on the
//! same field somewhere in the workspace, and vice versa: an acquiring
//! load with no releasing publisher is a weakened-fence bug waiting to
//! happen (the fence pairs with nothing).
//!
//! Atomic identity is the final receiver-chain segment after alias
//! resolution (`let flag = Arc::clone(&shutdown); flag.load(..)`
//! merges with `shutdown.store(..)`), pooled across the whole
//! workspace — the rule checks *existence of a pairing site*, not
//! happens-before on every path (that is `crates/sched`'s dynamic
//! job). Scope: files importing through the `hyperline_util::sync`
//! seam, excluding `crates/sched/` and test code. Relaxed-only fields
//! are never flagged.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::parser::atomic_method;
use crate::Finding;

fn is_release(ord: &str) -> bool {
    matches!(ord, "Release" | "AcqRel" | "SeqCst")
}

fn is_acquire(ord: &str) -> bool {
    matches!(ord, "Acquire" | "AcqRel" | "SeqCst")
}

#[derive(Default)]
struct FieldSites {
    /// (file, line, method) of releasing writes.
    releases: Vec<(String, usize, String)>,
    /// (file, line, method) of acquiring reads.
    acquires: Vec<(String, usize, String)>,
    /// Any synchronizing op at all (gates the rule per field).
    any_sync: bool,
}

/// Runs HL009 over the graph. Returns the number of distinct atomic
/// fields seen for the summary line.
pub fn run(graph: &CallGraph<'_>, findings: &mut Vec<Finding>) -> usize {
    let mut fields: BTreeMap<String, FieldSites> = BTreeMap::new();
    for node in &graph.nodes {
        let file_ast = graph
            .files
            .iter()
            .find(|f| f.path == node.file)
            .expect("node file present");
        if !file_ast.uses_sync_seam || node.file.starts_with("crates/sched/") {
            continue;
        }
        for op in &node.def.atomics {
            let Some((reads, writes)) = atomic_method(&op.method) else {
                continue;
            };
            let key = op.chain.rsplit('.').next().unwrap_or(&op.chain).to_string();
            let entry = fields.entry(key).or_default();
            let releasing = writes && op.orderings.iter().any(|o| is_release(o));
            let acquiring = reads && op.orderings.iter().any(|o| is_acquire(o));
            if releasing {
                entry
                    .releases
                    .push((node.file.to_string(), op.line as usize, op.method.clone()));
            }
            if acquiring {
                entry
                    .acquires
                    .push((node.file.to_string(), op.line as usize, op.method.clone()));
            }
            if releasing || acquiring {
                entry.any_sync = true;
            }
        }
    }
    let count = fields.len();
    for (field, sites) in &fields {
        if !sites.any_sync {
            continue;
        }
        if sites.acquires.is_empty() {
            for (file, line, method) in &sites.releases {
                findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "HL009",
                    what: format!(
                        "atomic `{field}`: Release {method} has no Acquire load site anywhere"
                    ),
                    hint: "pair the Release with an Acquire/AcqRel load on the same field, or relax both to Relaxed if no data is published",
                });
            }
        }
        if sites.releases.is_empty() {
            for (file, line, method) in &sites.acquires {
                findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "HL009",
                    what: format!(
                        "atomic `{field}`: Acquire {method} has no Release store site anywhere"
                    ),
                    hint: "pair the Acquire with a Release/AcqRel store on the same field, or relax it to Relaxed if it orders nothing",
                });
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let asts: Vec<_> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = CallGraph::build(&asts);
        let mut findings = Vec::new();
        run(&graph, &mut findings);
        findings
    }

    const HEADER: &str = "use crate::sync::atomic::{AtomicBool, Ordering};\n";

    #[test]
    fn orphaned_release_is_flagged() {
        let src = format!(
            "{HEADER}struct S {{ flag: AtomicBool }}\nimpl S {{\n    fn publish(&self) {{ self.flag.store(true, Ordering::Release); }}\n    fn check(&self) -> bool {{ self.flag.load(Ordering::Relaxed) }}\n}}\n"
        );
        let findings = run_on(&[("crates/util/src/f.rs", &src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "HL009");
        assert!(findings[0].what.contains("`flag`"), "{}", findings[0].what);
        assert!(
            findings[0].what.contains("no Acquire"),
            "{}",
            findings[0].what
        );
    }

    #[test]
    fn paired_release_acquire_is_clean_even_through_aliases() {
        let src = format!(
            "{HEADER}fn spawn_pair(shutdown: &Arc<AtomicBool>) {{\n    let worker_flag = Arc::clone(shutdown);\n    worker_flag.load(Ordering::Acquire);\n    shutdown.store(true, Ordering::Release);\n}}\n"
        );
        assert!(run_on(&[("crates/util/src/f.rs", &src)]).is_empty());
    }

    #[test]
    fn orphaned_acquire_is_flagged_and_relaxed_only_is_ignored() {
        let src = format!(
            "{HEADER}struct S {{ a: AtomicBool, b: AtomicBool }}\nimpl S {{\n    fn f(&self) {{ self.a.load(Ordering::Acquire); self.b.load(Ordering::Relaxed); self.b.store(true, Ordering::Relaxed); }}\n}}\n"
        );
        let findings = run_on(&[("crates/util/src/f.rs", &src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].what.contains("`a`"), "{}", findings[0].what);
        assert!(
            findings[0].what.contains("no Release"),
            "{}",
            findings[0].what
        );
    }

    #[test]
    fn seqcst_counts_for_both_directions() {
        let src = format!(
            "{HEADER}struct S {{ n: AtomicBool }}\nimpl S {{\n    fn f(&self) {{ self.n.store(true, Ordering::SeqCst); }}\n    fn g(&self) -> bool {{ self.n.load(Ordering::SeqCst) }}\n}}\n"
        );
        assert!(run_on(&[("crates/util/src/f.rs", &src)]).is_empty());
    }
}
