//! Breadth-first search and distance queries.
//!
//! In an s-line graph, the BFS distance between two vertices is exactly
//! the paper's *s-distance* between the corresponding hyperedges (length
//! of the shortest s-walk), so these kernels implement the s-distance and
//! s-diameter metrics of Stage 5.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances; unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest-path distance between two vertices, or `None` if disconnected.
///
/// Early-exits as soon as `target` is settled.
///
/// # Panics
/// Panics if either endpoint is `>= g.num_vertices()` — including
/// `distance(v, v)` with `v` out of range, which used to answer
/// `Some(0)` before ever validating `v`.
pub fn distance(g: &Graph, source: u32, target: u32) -> Option<u32> {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source out of range");
    assert!((target as usize) < n, "target out of range");
    if source == target {
        return Some(0);
    }
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                if v == target {
                    return Some(du + 1);
                }
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    None
}

/// Eccentricity of `v`: the greatest finite BFS distance from `v`.
/// Returns 0 for an isolated vertex.
///
/// # Panics
/// Panics if `v >= g.num_vertices()`.
pub fn eccentricity(g: &Graph, v: u32) -> u32 {
    assert!((v as usize) < g.num_vertices(), "source out of range");
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Diameter of the graph restricted to reachable pairs: the maximum finite
/// eccentricity over all vertices. This is the paper's *s-diameter* when
/// run on an s-line graph. O(V·E) of sequential sweeps — kept as the
/// serial reference; Stage 5 routes through
/// [`crate::frontier::diameter`], the source-parallel engine.
pub fn diameter(g: &Graph) -> u32 {
    (0..g.num_vertices() as u32)
        .map(|v| eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn pairwise_distance() {
        let g = path5();
        assert_eq!(distance(&g, 0, 4), Some(4));
        assert_eq!(distance(&g, 3, 3), Some(0));
        let g2 = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(distance(&g2, 0, 2), None);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter(&g), 4);
        // Cycle of 6: diameter 3.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(diameter(&c6), 3);
    }

    #[test]
    fn isolated_vertex_eccentricity_zero() {
        let g = Graph::from_edges(2, &[]);
        assert_eq!(eccentricity(&g, 0), 0);
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn distance_same_out_of_range_vertex_panics() {
        // Used to early-return Some(0) without ever validating `v`.
        distance(&path5(), 9, 9);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn distance_target_bounds_checked() {
        distance(&path5(), 0, 17);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn eccentricity_bounds_checked() {
        eccentricity(&path5(), 8);
    }

    #[test]
    fn distance_symmetry() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 5), (2, 5)]);
        for u in 0..6u32 {
            for v in 0..6u32 {
                assert_eq!(distance(&g, u, v), distance(&g, v, u));
            }
        }
    }
}
