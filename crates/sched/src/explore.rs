//! The exploration driver: bounded-preemption DFS over schedules, with
//! seeded-random fallback above a cap, replay, and failure shrinking.
//!
//! A *schedule* is the sequence of nondeterministic choices a run made:
//! which thread continues at each scheduling point, which store a
//! relaxed load observes, which waiter a `notify_one` wakes. The runtime
//! records every non-trivial choice as `(taken, options)`; the DFS
//! enumerates schedules by re-running the closure with the last branch
//! advanced — classic stateless model checking.
//!
//! On failure the driver shrinks the schedule (zeroing choices while the
//! failure persists — choice 0 is always "no preemption / newest value",
//! so zeros are the boring default) and reports a dotted replay string.
//! `HYPERLINE_SCHED_REPLAY=<string> cargo test <name>` re-runs exactly
//! that schedule.

use crate::rt::{self, Ctx, Runtime, SchedAbort};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

#[derive(Clone, Debug)]
pub struct Config {
    /// Max forced switches away from a runnable thread per schedule.
    pub preemption_bound: usize,
    /// DFS cap; past it, fall back to seeded-random schedules.
    pub max_schedules: u64,
    /// Random schedules to run when the DFS cap was hit.
    pub random_schedules: u64,
    /// Seed for the random phase.
    pub seed: u64,
    /// Per-schedule scheduling-point budget (livelock guard).
    pub max_steps: usize,
    /// How many (newest-first) stores a relaxed load may branch over.
    pub max_value_choices: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 40_000,
            random_schedules: 2_000,
            seed: 0x5eed_cafe,
            max_steps: 20_000,
            max_value_choices: 2,
        }
    }
}

#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic / oracle message from the failing run.
    pub message: String,
    /// Shrunk schedule as a dotted replay string.
    pub schedule: String,
}

#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules actually run (DFS + random + shrink probes).
    pub schedules: u64,
    /// `true` iff the bounded DFS enumerated every schedule.
    pub complete: bool,
    pub failure: Option<Failure>,
}

/// Mutes panic output from model threads (named `sched-*`) and from the
/// internal teardown unwind, chaining to the previous hook otherwise.
/// Probing thousands of schedules — and re-running a failing one while
/// shrinking — would print a backtrace per run without this.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<SchedAbort>() {
                return;
            }
            let muted = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sched-"));
            if !muted {
                prev(info);
            }
        }));
    });
}

type TestFn = Arc<dyn Fn() + Send + Sync>;

/// Runs the closure once under a fresh runtime with the given forced
/// choice prefix (or seeded-random choices), returning the recorded
/// choices and any failure.
fn run_once(
    f: &TestFn,
    prefix: Vec<u32>,
    random: Option<u64>,
    cfg: &Config,
) -> (Vec<(u32, u32)>, Option<String>) {
    let rt = Runtime::new(
        prefix,
        random,
        cfg.preemption_bound,
        cfg.max_steps,
        cfg.max_value_choices,
    );
    let root = rt.register_root();
    let f = f.clone();
    let rt2 = rt.clone();
    let os = std::thread::Builder::new()
        .name("sched-root".to_string())
        .spawn(move || {
            rt::set_ctx(Some(Ctx {
                rt: rt2.clone(),
                tid: root,
            }));
            let res = catch_unwind(AssertUnwindSafe(|| f()));
            let msg = match &res {
                Ok(_) => None,
                Err(p) if p.is::<SchedAbort>() => None,
                Err(p) => Some(crate::thread::panic_message(p.as_ref())),
            };
            rt2.finish_thread(root, msg);
            rt::set_ctx(None);
        })
        .expect("failed to spawn sched root thread");
    let (recorded, failure) = rt.wait_done();
    let _ = os.join();
    (recorded, failure)
}

/// The DFS successor: advance the deepest branch with options left.
fn next_prefix(recorded: &[(u32, u32)]) -> Option<Vec<u32>> {
    for i in (0..recorded.len()).rev() {
        let (taken, options) = recorded[i];
        if taken + 1 < options {
            let mut p: Vec<u32> = recorded[..i].iter().map(|r| r.0).collect();
            p.push(taken + 1);
            return Some(p);
        }
    }
    None
}

fn fmt_schedule(choices: &[u32]) -> String {
    choices
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Parses `HYPERLINE_SCHED_REPLAY` (dotted choice indices) if set.
pub fn replay_from_env() -> Option<Vec<u32>> {
    let raw = std::env::var("HYPERLINE_SCHED_REPLAY").ok()?;
    let parsed: Vec<u32> = raw
        .split('.')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if parsed.is_empty() {
        None
    } else {
        Some(parsed)
    }
}

/// Greedy shrink: repeatedly try zeroing nonzero choices (choice 0 is
/// the default action) while the failure reproduces, budget-bounded.
/// Returns the shrunk choice vector and the probe count.
fn shrink(f: &TestFn, mut best: Vec<(u32, u32)>, cfg: &Config) -> (Vec<u32>, u64) {
    let mut budget: u32 = 200;
    let mut probes = 0u64;
    let mut improved = true;
    while improved && budget > 0 {
        improved = false;
        for i in 0..best.len() {
            if best[i].0 == 0 || budget == 0 {
                continue;
            }
            let mut candidate: Vec<u32> = best.iter().map(|r| r.0).collect();
            candidate[i] = 0;
            budget -= 1;
            probes += 1;
            let (rec, fail) = run_once(f, candidate, None, cfg);
            if fail.is_some() {
                best = rec;
                improved = true;
                break;
            }
        }
    }
    (best.iter().map(|r| r.0).collect(), probes)
}

/// Explores the closure under `cfg` and returns a [`Report`] instead of
/// panicking — the entry point for tests that *expect* a failure (e.g.
/// the weakened-ordering mutant).
pub fn explore_with<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_hook();
    let f: TestFn = Arc::new(f);
    let mut schedules = 0u64;

    if let Some(replay) = replay_from_env() {
        let (recorded, failure) = run_once(&f, replay, None, &cfg);
        return Report {
            schedules: 1,
            complete: false,
            failure: failure.map(|message| Failure {
                message,
                schedule: fmt_schedule(&recorded.iter().map(|r| r.0).collect::<Vec<_>>()),
            }),
        };
    }

    let fail_with = |message: String, recorded: Vec<(u32, u32)>, schedules: &mut u64| {
        let (choices, probes) = shrink(&f, recorded, &cfg);
        *schedules += probes;
        Report {
            schedules: *schedules,
            complete: false,
            failure: Some(Failure {
                message,
                schedule: fmt_schedule(&choices),
            }),
        }
    };

    // Phase 1: bounded-preemption DFS.
    let mut prefix = Vec::new();
    let complete = loop {
        let (recorded, failure) = run_once(&f, prefix, None, &cfg);
        schedules += 1;
        if let Some(message) = failure {
            return fail_with(message, recorded, &mut schedules);
        }
        match next_prefix(&recorded) {
            None => break true,
            Some(_) if schedules >= cfg.max_schedules => break false,
            Some(p) => prefix = p,
        }
    };

    // Phase 2: seeded-random fallback when the DFS was cut short.
    if !complete {
        for i in 0..cfg.random_schedules {
            let (recorded, failure) =
                run_once(&f, Vec::new(), Some(cfg.seed.wrapping_add(i)), &cfg);
            schedules += 1;
            if let Some(message) = failure {
                return fail_with(message, recorded, &mut schedules);
            }
        }
    }

    Report {
        schedules,
        complete,
        failure: None,
    }
}

/// Explores the closure with the default config and panics with a
/// replayable schedule on the first invariant violation. This is the
/// call model-checked tests make.
pub fn explore<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore_with(Config::default(), f);
    if let Some(fail) = report.failure {
        panic!(
            "sched: invariant violated after {} schedules: {}\n  \
             replay with: HYPERLINE_SCHED_REPLAY={}",
            report.schedules, fail.message, fail.schedule
        );
    }
}
