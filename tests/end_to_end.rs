//! End-to-end pipeline tests across crates: generator → preprocessing →
//! s-overlap → squeeze → metrics.

use hyperline::graph::cc;
use hyperline::hypergraph::io;
use hyperline::prelude::*;
use hyperline::slinegraph::SLineGraph;

#[test]
fn pipeline_on_generated_profile_all_stages() {
    let h = Profile::CompBoard.generate(1);
    let config = PipelineConfig {
        s: 3,
        algorithm: Algorithm::Algo2,
        strategy: Strategy::default(),
        compute_toplexes: true,
        squeeze: true,
        run_components: true,
    };
    let run = run_pipeline(&h, &config);
    assert!(run.num_toplexes.is_some());
    assert!(run.times.len() >= 4);
    // Edges are on original IDs and valid.
    for &(a, b) in &run.line_graph.edges {
        assert!(a < b);
        assert!((b as usize) < h.num_edges());
        assert!(h.inc(a, b) >= 3);
    }
}

#[test]
fn toplex_pipeline_loses_only_non_maximal_edges() {
    // Every s-line edge between toplexes must appear in both pipelines.
    let h = Profile::LesMis.generate(2);
    let with = run_pipeline(
        &h,
        &PipelineConfig {
            compute_toplexes: true,
            ..PipelineConfig::new(2)
        },
    );
    let without = run_pipeline(&h, &PipelineConfig::new(2));
    let all: std::collections::HashSet<(u32, u32)> =
        without.line_graph.edges.iter().copied().collect();
    for e in &with.line_graph.edges {
        assert!(all.contains(e), "toplex edge {e:?} missing from full run");
    }
    assert!(with.line_graph.edges.len() <= without.line_graph.edges.len());
}

#[test]
fn components_match_union_find_oracle() {
    let h = Profile::EmailEuAll.generate(3);
    let run = run_pipeline(&h, &PipelineConfig::new(2));
    let comps = run.components.unwrap();
    // Oracle: union-find over the raw edge list.
    let labels = cc::components_union_find(h.num_edges(), &run.line_graph.edges);
    let oracle = cc::components_as_sets(&labels);
    let oracle_non_singleton: Vec<Vec<u32>> = oracle.into_iter().filter(|c| c.len() > 1).collect();
    let got_non_singleton: Vec<Vec<u32>> = comps.into_iter().filter(|c| c.len() > 1).collect();
    assert_eq!(got_non_singleton, oracle_non_singleton);
}

#[test]
fn squeezed_and_unsqueezed_agree_on_metrics() {
    let h = Profile::LesMis.generate(4);
    let edges = algo2_slinegraph(&h, 2, &Strategy::default()).edges;
    let squeezed = SLineGraph::new_squeezed(2, h.num_edges(), edges.clone());
    let unsqueezed = SLineGraph::new_unsqueezed(2, h.num_edges(), edges);
    assert_eq!(
        squeezed.connected_components(),
        unsqueezed.connected_components()
    );
    for (e, f) in [(0u32, 5u32), (3, 9), (1, 1)] {
        assert_eq!(
            squeezed.s_distance(e, f),
            unsqueezed.s_distance(e, f),
            "({e},{f})"
        );
    }
}

#[test]
fn io_roundtrip_preserves_slinegraphs() {
    let h = Profile::LesMis.generate(5);
    let mut buf = Vec::new();
    io::write_edge_list(&h, &mut buf).unwrap();
    let h2 = io::read_edge_list(buf.as_slice()).unwrap();
    assert_eq!(h, h2);
    let st = Strategy::default();
    assert_eq!(
        algo2_slinegraph(&h, 3, &st).edges,
        algo2_slinegraph(&h2, 3, &st).edges
    );
}

#[test]
fn spgemm_pipeline_matches_algo2_pipeline() {
    let h = Profile::CompBoard.generate(6);
    let a2 = run_pipeline(&h, &PipelineConfig::new(2));
    let sp = run_pipeline(
        &h,
        &PipelineConfig {
            algorithm: Algorithm::SpGemm { upper: true },
            ..PipelineConfig::new(2)
        },
    );
    assert_eq!(a2.line_graph.edges, sp.line_graph.edges);
}

#[test]
fn betweenness_identifies_planted_star_hub() {
    let h = Profile::Imdb.generate(11);
    let planted = Profile::Imdb.planted_edge_range(11).unwrap();
    let run = run_pipeline(&h, &PipelineConfig::new(100));
    let hub = planted.start;
    // The hub's component is exactly the 5 planted star members.
    let comps = run.components.unwrap();
    let star = comps
        .iter()
        .find(|c| c.contains(&hub))
        .expect("hub must be s-connected");
    assert_eq!(star.len(), 5);
    // Within the star, only the hub has positive betweenness.
    let bc = run.line_graph.betweenness();
    for &(e, score) in bc.iter() {
        if star.contains(&e) {
            if e == hub {
                assert!(score > 0.0, "hub must be central");
            } else {
                assert_eq!(score, 0.0, "leaf {e} must have zero centrality");
            }
        }
    }
}

#[test]
fn clique_expansion_matches_two_section_semantics() {
    // {u, v} in the 2-section iff some hyperedge contains both.
    let h = Profile::LesMis.generate(7);
    let cx = clique_expansion(&h, &Strategy::default());
    let set: std::collections::HashSet<(u32, u32)> = cx.edges.iter().copied().collect();
    let n = h.num_vertices() as u32;
    for u in 0..n.min(40) {
        for v in (u + 1)..n.min(40) {
            assert_eq!(set.contains(&(u, v)), h.adj(u, v) >= 1, "pair ({u},{v})");
        }
    }
}

#[test]
fn ensemble_pipeline_on_condmat_reproduces_fig6_shape() {
    let h = Profile::CondMat.generate(42);
    let s_values: Vec<u32> = (1..=16).collect();
    let ens = ensemble_slinegraphs(&h, &s_values, &Strategy::default());
    let lambdas: Vec<f64> = ens
        .per_s
        .iter()
        .map(|(s, edges)| {
            SLineGraph::new_squeezed(*s, h.num_edges(), edges.clone()).algebraic_connectivity()
        })
        .collect();
    // Mid-s regime is weakly connected; the high-s regime (planted teams)
    // is sharply more connected.
    let mid_max = lambdas[3..12].iter().cloned().fold(0.0, f64::max);
    let high_max = lambdas[12..].iter().cloned().fold(0.0, f64::max);
    assert!(
        high_max > 2.0 * mid_max,
        "expected sharp rise at s >= 13: mid {mid_max} vs high {high_max}"
    );
}
