//! `hyperline-sched` — a miniature [loom]-style concurrency model checker,
//! std-only, built for this workspace's zero-external-crates rule.
//!
//! The repo's parallel kernels and serving infrastructure are hand-rolled
//! on atomics, mutexes and condvars; the ordinary test suite only ever
//! samples a few interleavings of them. This crate closes that gap for
//! *small* concurrent units:
//!
//! * [`sync`] — shim `AtomicU64`/`AtomicUsize`/`AtomicU32`/`AtomicI64`/
//!   `AtomicBool`, `Mutex` and `Condvar` types with the same API shape as
//!   `std::sync`. Outside a model run they delegate straight to the real
//!   std primitives (zero behavioural change); inside [`explore`] every
//!   operation becomes a *scheduling point* the checker controls.
//! * [`thread`] — shim `spawn`/`Builder`/`JoinHandle` with the same
//!   fallback: real threads normally, checker-controlled model threads
//!   inside a run.
//! * [`explore`] — the driver: runs a closure once per schedule,
//!   exhaustively enumerating thread interleavings (and weak-memory
//!   load results) via bounded-preemption DFS, falling back to seeded
//!   random schedules above a cap. Failures print a persisted schedule
//!   that can be replayed (`HYPERLINE_SCHED_REPLAY=...`) after an
//!   automatic shrinking pass.
//!
//! Production crates never import this directly. They import
//! `hyperline_util::sync`, a type-alias seam that resolves to
//! `std::sync` normally and to these shims under `--cfg hyperline_sched`
//! — the same source compiles under both, so the code the checker
//! explores is the code that ships.
//!
//! # Memory model
//!
//! The checker models the release/acquire fragment of the C11 model with
//! per-location store histories and vector clocks: a relaxed load may
//! return *any* store not already ordered before the reader's knowledge
//! (bounded by a small history window), an acquire load reading a
//! released store joins the writer's clock, and RMW operations always
//! read the newest store (atomicity) while continuing release sequences.
//! `SeqCst` is over-approximated as "reads the newest store", which is
//! sound for catching bugs introduced by *weakening* an ordering (the
//! checker's purpose) but does not explore non-SC behaviours of mixed
//! SeqCst protocols. See `rt.rs` for the exact rules.
//!
//! [loom]: https://github.com/tokio-rs/loom

pub mod explore;
mod rt;
pub mod sync;
pub mod thread;

pub use explore::{explore, explore_with, replay_from_env, Config, Failure, Report};
