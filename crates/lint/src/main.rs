//! `hyperline-lint` CLI — see the crate docs in `lib.rs` for the rule
//! catalog. This binary only handles argument parsing, file loading,
//! allowlist application and output formatting; all analysis lives in
//! the library so the fixture tests can drive it in-memory.
//!
//! Usage: `hyperline-lint [--root <workspace-root>] [--json]`
//!
//! Text mode ends with a machine-greppable summary line:
//! `lint-summary: files=<rs>+<manifests> findings=<n> stale=<n>
//!  parse_errors=<n> roots=<n> reachable=<n> unresolved=<n>
//!  total_ms=<t> HL001=<n> … HL009=<n>`
//! (per-rule counts are post-suppression). `--json` emits the schema
//! documented in the README ("Correctness tooling") instead. Exit
//! status is nonzero iff findings remain after suppression or stale
//! allowlist entries exist.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use hyperline_lint::{analyze, collect, load_allowlist, Finding, Report};

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().unwrap_or_else(|| usage()),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("hyperline-lint: unknown argument `{other}`");
                usage()
            }
        }
    }
    let root = PathBuf::from(root);

    let allows = load_allowlist(&root.join("scripts/lint_allow.txt"));

    let mut paths = Vec::new();
    collect(&root.join("crates"), &mut paths);
    paths.sort();

    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &paths {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        if let Ok(text) = fs::read_to_string(path) {
            sources.push((rel, text));
        }
    }
    // The workspace root manifest declares members and shared lint config.
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        sources.push(("Cargo.toml".to_string(), text));
    }

    let report = analyze(&sources);
    let kept: Vec<&Finding> = report
        .findings
        .iter()
        .filter(|f| !allows.iter().any(|a| a.matches(f)))
        .collect();
    let stale: Vec<&str> = allows
        .iter()
        .filter(|a| !a.used.get())
        .map(|a| a.raw.as_str())
        .collect();

    if json {
        print_json(&report, &kept, &stale);
    } else {
        print_text(&report, &kept, &stale);
    }
    if kept.is_empty() && stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ! {
    eprintln!("usage: hyperline-lint [--root <workspace-root>] [--json]");
    std::process::exit(2);
}

/// Post-suppression count for one rule.
fn shown_count(kept: &[&Finding], rule: &str) -> usize {
    kept.iter().filter(|f| f.rule == rule).count()
}

fn print_text(report: &Report, kept: &[&Finding], stale: &[&str]) {
    for f in kept {
        println!("{}:{}: {} {}", f.file, f.line, f.rule, f.what);
        println!("    hint: {}", f.hint);
    }
    for raw in stale {
        println!("allowlist: unused entry `{raw}` (stale suppression — remove it)");
    }
    let mut per_rule = String::new();
    for (name, stat) in &report.stats {
        if name.starts_with("HL") {
            per_rule.push_str(&format!(
                " {name}={}/{:.1}ms",
                shown_count(kept, name),
                stat.micros as f64 / 1000.0
            ));
        }
    }
    println!(
        "lint-summary: files={}+{} findings={} stale={} parse_errors={} roots={} reachable={} unresolved={} total_ms={:.1}{per_rule}",
        report.rs_files,
        report.manifests,
        kept.len(),
        stale.len(),
        report.parse_failures.len(),
        report.panics.roots,
        report.panics.reachable,
        report.unresolved_calls,
        report.total_micros as f64 / 1000.0,
    );
    if kept.is_empty() && stale.is_empty() {
        println!(
            "hyperline-lint: {} files clean",
            report.rs_files + report.manifests
        );
    } else {
        println!("hyperline-lint: {} finding(s)", kept.len() + stale.len());
    }
}

fn print_json(report: &Report, kept: &[&Finding], stale: &[&str]) {
    use hyperline_lint::json_escape as esc;
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", report.rs_files));
    out.push_str(&format!("  \"manifests\": {},\n", report.manifests));
    out.push_str(&format!(
        "  \"parse_errors\": {},\n",
        report.parse_failures.len()
    ));
    out.push_str(&format!(
        "  \"unresolved_calls\": {},\n",
        report.unresolved_calls
    ));
    out.push_str(&format!("  \"roots\": {},\n", report.panics.roots));
    out.push_str(&format!("  \"reachable\": {},\n", report.panics.reachable));
    out.push_str(&format!("  \"lock_edges\": {},\n", report.lock_edges));
    out.push_str(&format!("  \"atomic_fields\": {},\n", report.atomic_fields));
    out.push_str(&format!("  \"total_micros\": {},\n", report.total_micros));
    out.push_str("  \"rules\": {");
    let mut first = true;
    for (name, stat) in &report.stats {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{name}\": {{\"raw_findings\": {}, \"shown\": {}, \"micros\": {}}}",
            stat.findings,
            if name.starts_with("HL") {
                shown_count(kept, name)
            } else {
                0
            },
            stat.micros
        ));
    }
    out.push_str("\n  },\n");
    out.push_str("  \"findings\": [");
    for (i, f) in kept.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"what\": \"{}\", \"hint\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.what),
            esc(f.hint)
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"stale_allow\": [");
    for (i, raw) in stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", esc(raw)));
    }
    out.push_str("]\n}");
    println!("{out}");
}
