//! The s-line-graph construction algorithms (§III).
//!
//! Three constructions of the edge list of `L_s(H)`:
//!
//! * [`naive_slinegraph`] — all-pairs set intersection (the §I strawman);
//! * [`algo1_slinegraph`] — Algorithm 1 of the paper: wedge-driven
//!   candidate generation plus explicit short-circuited set intersections
//!   with degree pruning and visited-skipping (the HiPC'21 baseline);
//! * [`algo2_slinegraph`] — Algorithm 2, the paper's contribution: wedge-
//!   driven *overlap counting* in per-worker accumulators — **zero** set
//!   intersections.
//!
//! All three return pairs `(i, j)` with `i < j` on the hypergraph's
//! current edge IDs, sorted, plus per-worker work counters.
//!
//! Every variant traverses each wedge `(e_i, v_k, e_j)` once, from the
//! smaller edge ID to the larger (`i < j`) — the upper-triangle
//! optimization the relabel-by-degree orders interact with (§IV).

use crate::counter::{AnyCounter, OverlapCounter};
use crate::partition::execute;
use crate::stats::{AlgoStats, WorkerStats};
use crate::strategy::{Strategy, TriangleSide};
use hyperline_hypergraph::csr::{intersection_at_least, intersection_size};
use hyperline_hypergraph::Hypergraph;
use hyperline_util::parallel::{merge_sorted_runs, par_for_each_mut};
use hyperline_util::telemetry::Span;
use hyperline_util::Timer;

/// The wedge targets `e_j` reachable from source `e_i` through one vertex
/// neighbor list, restricted to the traversed triangle (`j > i` for
/// Upper, `j < i` for Lower). Neighbor lists are sorted, so both are
/// contiguous slices.
#[inline]
pub(crate) fn wedge_targets(nbrs: &[u32], i: u32, side: TriangleSide) -> &[u32] {
    match side {
        TriangleSide::Upper => &nbrs[nbrs.partition_point(|&j| j <= i)..],
        TriangleSide::Lower => &nbrs[..nbrs.partition_point(|&j| j < i)],
    }
}

/// Normalizes freshly-drained pairs to `(min, max)` order (needed when
/// traversing the lower triangle, where targets satisfy `j < i`).
#[inline]
pub(crate) fn normalize_pairs(pairs: &mut [(u32, u32)]) {
    for p in pairs {
        if p.0 > p.1 {
            *p = (p.1, p.0);
        }
    }
}

/// Result of an s-overlap computation.
#[derive(Debug, Clone)]
pub struct OverlapResult {
    /// s-line-graph edges `(i, j)`, `i < j`, sorted ascending.
    pub edges: Vec<(u32, u32)>,
    /// Per-worker work counters.
    pub stats: AlgoStats,
}

/// Merges per-worker emissions into the final sorted edge list.
///
/// Under the static partitions each worker's output is a near-sorted run
/// (sources ascend within a worker), so each run sorts cheaply — in
/// parallel across runs — and a parallel k-way merge replaces the old
/// single-core `sort_unstable` over the concatenation. The result is the
/// sorted multiset of all emissions, so it is byte-identical for every
/// worker count and partition.
fn merge_worker_outputs(locals: Vec<(Vec<(u32, u32)>, WorkerStats)>) -> OverlapResult {
    let _span = Span::enter("merge");
    let timer = Timer::start();
    let mut runs = Vec::with_capacity(locals.len());
    let mut per_worker = Vec::with_capacity(locals.len());
    for (local_edges, mut stats) in locals {
        stats.edges_emitted = local_edges.len() as u64;
        runs.push(local_edges);
        per_worker.push(stats);
    }
    par_for_each_mut(&mut runs, |r| r.sort_unstable());
    let edges = merge_sorted_runs(runs);
    OverlapResult {
        edges,
        stats: AlgoStats::new(per_worker).with_merge_seconds(timer.seconds()),
    }
}

/// Naive all-pairs construction: intersect every pair of hyperedge vertex
/// lists. O(m²) pairs — only sensible for small inputs and as a test
/// oracle. Parallelized over source edges with the strategy's partition.
pub fn naive_slinegraph(h: &Hypergraph, s: u32, strategy: &Strategy) -> OverlapResult {
    assert!(s >= 1, "s must be at least 1");
    let m = h.num_edges();
    let counting = Span::enter("counting");
    let locals = execute(
        m,
        strategy.workers(),
        strategy.partition,
        |_| (Vec::new(), WorkerStats::default()),
        |i, (out, stats): &mut (Vec<(u32, u32)>, WorkerStats)| {
            if strategy.degree_pruning && (h.edge_size(i) as u32) < s {
                return;
            }
            stats.edges_processed += 1;
            let mine = h.edge_vertices(i);
            for j in (i + 1)..m as u32 {
                stats.set_intersections += 1;
                if intersection_size(mine, h.edge_vertices(j)) as u32 >= s {
                    out.push((i, j));
                }
            }
        },
    );
    drop(counting);
    merge_worker_outputs(locals)
}

/// Algorithm 1 (the HiPC'21 set-intersection algorithm): for each wedge
/// `(e_i, v_k, e_j)` with `i < j`, run one short-circuited sorted-set
/// intersection per *distinct* candidate `e_j` (a per-worker stamp array
/// skips already-visited candidates), applying degree-based pruning.
pub fn algo1_slinegraph(h: &Hypergraph, s: u32, strategy: &Strategy) -> OverlapResult {
    assert!(s >= 1, "s must be at least 1");
    let m = h.num_edges();
    struct Local {
        out: Vec<(u32, u32)>,
        stats: WorkerStats,
        /// stamp[j] == i means candidate j was already intersected for
        /// source i ("skipping already visited hyperedges").
        stamp: Vec<u32>,
    }
    let counting = Span::enter("counting");
    let locals = execute(
        m,
        strategy.workers(),
        strategy.partition,
        |_| Local {
            out: Vec::new(),
            stats: WorkerStats::default(),
            stamp: vec![u32::MAX; m],
        },
        |i, local: &mut Local| {
            let size_i = h.edge_size(i) as u32;
            if strategy.degree_pruning && size_i < s {
                return;
            }
            local.stats.edges_processed += 1;
            let mine = h.edge_vertices(i);
            let heuristics = strategy.algo1_heuristics;
            let before = local.out.len();
            for &v in mine {
                for &j in wedge_targets(h.vertex_edges(v), i, strategy.triangle) {
                    local.stats.wedge_visits += 1;
                    if heuristics.skip_visited {
                        if local.stamp[j as usize] == i {
                            continue;
                        }
                        local.stamp[j as usize] = i;
                    }
                    // Degree-based pruning on the candidate side.
                    if strategy.degree_pruning && (h.edge_size(j) as u32) < s {
                        continue;
                    }
                    local.stats.set_intersections += 1;
                    let hit = if heuristics.short_circuit {
                        intersection_at_least(mine, h.edge_vertices(j), s as usize)
                    } else {
                        intersection_size(mine, h.edge_vertices(j)) as u32 >= s
                    };
                    if hit {
                        local.out.push((i, j));
                    }
                }
            }
            if !heuristics.skip_visited {
                // Without visited-skipping the same pair is re-found once
                // per shared vertex; deduplicate this source's emissions.
                local.out[before..].sort_unstable();
                let mut write = before;
                for k in before..local.out.len() {
                    if write == before || local.out[write - 1] != local.out[k] {
                        local.out[write] = local.out[k];
                        write += 1;
                    }
                }
                local.out.truncate(write);
            }
            normalize_pairs(&mut local.out[before..]);
            // Presort this source's emissions (small groups): sources
            // ascend within every partition, so under the upper triangle
            // each worker's whole run comes out sorted and the final
            // merge degrades to a cheap verification instead of a full
            // sort of the concatenation.
            local.out[before..].sort_unstable();
        },
    );
    drop(counting);
    merge_worker_outputs(locals.into_iter().map(|l| (l.out, l.stats)).collect())
}

/// Algorithm 2 (the paper's contribution): per source edge, bump a
/// per-worker overlap counter for every wedge endpoint `j > i`, then emit
/// pairs whose running count reached `s`. No set intersections at all.
pub fn algo2_slinegraph(h: &Hypergraph, s: u32, strategy: &Strategy) -> OverlapResult {
    assert!(s >= 1, "s must be at least 1");
    let m = h.num_edges();
    struct Local {
        out: Vec<(u32, u32)>,
        stats: WorkerStats,
        counter: AnyCounter,
    }
    let counting = Span::enter("counting");
    let locals = execute(
        m,
        strategy.workers(),
        strategy.partition,
        |_| Local {
            out: Vec::new(),
            stats: WorkerStats::default(),
            counter: AnyCounter::new(strategy.counter, m),
        },
        |i, local: &mut Local| {
            if strategy.degree_pruning && (h.edge_size(i) as u32) < s {
                return;
            }
            local.stats.edges_processed += 1;
            for &v in h.edge_vertices(i) {
                for &j in wedge_targets(h.vertex_edges(v), i, strategy.triangle) {
                    local.counter.bump(j);
                    local.stats.wedge_visits += 1;
                }
            }
            let before = local.out.len();
            local.counter.drain(i, s, &mut local.out);
            normalize_pairs(&mut local.out[before..]);
            // Presort per source (see algo1): counter drain order is
            // arbitrary, but sorted small groups make each worker's run
            // globally sorted under the upper triangle, collapsing the
            // merge tail. O(Σ k·log k) here beats O(E·log E) there —
            // and runs inside the parallel counting stage.
            local.out[before..].sort_unstable();
        },
    );
    drop(counting);
    merge_worker_outputs(locals.into_iter().map(|l| (l.out, l.stats)).collect())
}

/// Weighted variant of Algorithm 2: emits `(i, j, inc(e_i, e_j))`, the
/// overlap size as the s-line-graph edge weight (the "strength of
/// connection" drawn as line width in the paper's Figure 2).
pub fn algo2_slinegraph_weighted(
    h: &Hypergraph,
    s: u32,
    strategy: &Strategy,
) -> (Vec<(u32, u32, u32)>, AlgoStats) {
    assert!(s >= 1, "s must be at least 1");
    let m = h.num_edges();
    struct Local {
        out: Vec<(u32, u32, u32)>,
        stats: WorkerStats,
        counter: AnyCounter,
    }
    let counting = Span::enter("counting");
    let locals = execute(
        m,
        strategy.workers(),
        strategy.partition,
        |_| Local {
            out: Vec::new(),
            stats: WorkerStats::default(),
            counter: AnyCounter::new(strategy.counter, m),
        },
        |i, local: &mut Local| {
            if strategy.degree_pruning && (h.edge_size(i) as u32) < s {
                return;
            }
            local.stats.edges_processed += 1;
            for &v in h.edge_vertices(i) {
                for &j in wedge_targets(h.vertex_edges(v), i, strategy.triangle) {
                    local.counter.bump(j);
                    local.stats.wedge_visits += 1;
                }
            }
            let before = local.out.len();
            local.counter.drain_weighted(i, s, &mut local.out);
            for p in &mut local.out[before..] {
                if p.0 > p.1 {
                    *p = (p.1, p.0, p.2);
                }
            }
            local.out[before..].sort_unstable();
        },
    );
    drop(counting);
    // Same sorted-runs merge as `merge_worker_outputs`, over weighted
    // triples.
    let _span = Span::enter("merge");
    let timer = Timer::start();
    let mut runs = Vec::with_capacity(locals.len());
    let mut per_worker = Vec::with_capacity(locals.len());
    for mut l in locals {
        l.stats.edges_emitted = l.out.len() as u64;
        runs.push(l.out);
        per_worker.push(l.stats);
    }
    par_for_each_mut(&mut runs, |r| r.sort_unstable());
    let edges = merge_sorted_runs(runs);
    (
        edges,
        AlgoStats::new(per_worker).with_merge_seconds(timer.seconds()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterKind;
    use crate::partition::Partition;
    use rand::prelude::*;

    fn paper_h() -> Hypergraph {
        Hypergraph::paper_example()
    }

    /// Expected s-line graphs of the paper's Figure 2.
    fn paper_expected(s: u32) -> Vec<(u32, u32)> {
        match s {
            1 => vec![(0, 1), (0, 2), (1, 2), (2, 3)],
            2 => vec![(0, 1), (0, 2), (1, 2)],
            3 => vec![(0, 2), (1, 2)],
            4 => vec![],
            _ => unreachable!(),
        }
    }

    #[test]
    fn paper_figure2_all_algorithms() {
        let h = paper_h();
        let st = Strategy::default();
        for s in 1..=4u32 {
            let expect = paper_expected(s);
            assert_eq!(naive_slinegraph(&h, s, &st).edges, expect, "naive s={s}");
            assert_eq!(algo1_slinegraph(&h, s, &st).edges, expect, "algo1 s={s}");
            assert_eq!(algo2_slinegraph(&h, s, &st).edges, expect, "algo2 s={s}");
        }
    }

    #[test]
    fn algo2_performs_zero_set_intersections() {
        let h = paper_h();
        let r = algo2_slinegraph(&h, 2, &Strategy::default());
        assert_eq!(r.stats.total().set_intersections, 0);
        let r1 = algo1_slinegraph(&h, 2, &Strategy::default());
        assert!(r1.stats.total().set_intersections > 0);
    }

    #[test]
    fn weighted_emits_overlap_counts() {
        let h = paper_h();
        let (edges, _) = algo2_slinegraph_weighted(&h, 1, &Strategy::default());
        // inc values from the example: (0,1)=2, (0,2)=3, (1,2)=3, (2,3)=1
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 3), (1, 2, 3), (2, 3, 1)]);
    }

    fn random_hypergraph(rng: &mut StdRng) -> Hypergraph {
        let n = rng.gen_range(1..40usize);
        let m = rng.gen_range(1..60usize);
        let lists: Vec<Vec<u32>> = (0..m)
            .map(|_| {
                let k = rng.gen_range(0..=n.min(12));
                let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        Hypergraph::from_edge_lists(&lists, n)
    }

    #[test]
    fn algorithms_agree_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let h = random_hypergraph(&mut rng);
            let s = rng.gen_range(1..6u32);
            let st = Strategy::default();
            let expect = naive_slinegraph(&h, s, &st).edges;
            assert_eq!(algo1_slinegraph(&h, s, &st).edges, expect, "algo1 s={s}");
            assert_eq!(algo2_slinegraph(&h, s, &st).edges, expect, "algo2 s={s}");
        }
    }

    #[test]
    fn partitions_and_counters_agree() {
        let mut rng = StdRng::seed_from_u64(78);
        let h = random_hypergraph(&mut rng);
        let s = 2;
        let reference = algo2_slinegraph(&h, s, &Strategy::default()).edges;
        for partition in [
            Partition::Blocked,
            Partition::Cyclic,
            Partition::Dynamic { chunk: 4 },
        ] {
            for counter in CounterKind::ALL {
                for workers in [1usize, 2, 7] {
                    let st = Strategy::default()
                        .with_partition(partition)
                        .with_counter(counter)
                        .with_workers(workers);
                    assert_eq!(
                        algo2_slinegraph(&h, s, &st).edges,
                        reference,
                        "{partition:?} {counter:?} w={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..10 {
            let h = random_hypergraph(&mut rng);
            let s = rng.gen_range(2..5u32);
            let pruned = Strategy::default();
            let unpruned = Strategy::default().with_pruning(false);
            assert_eq!(
                algo2_slinegraph(&h, s, &pruned).edges,
                algo2_slinegraph(&h, s, &unpruned).edges
            );
            assert_eq!(
                algo1_slinegraph(&h, s, &pruned).edges,
                algo1_slinegraph(&h, s, &unpruned).edges
            );
        }
    }

    #[test]
    fn pruning_reduces_work() {
        // One big edge, many small ones: at s=3 the small edges are pruned.
        let mut lists = vec![vec![0u32, 1, 2, 3, 4]];
        for i in 0..20u32 {
            lists.push(vec![i % 5, (i + 1) % 5]);
        }
        let h = Hypergraph::from_edge_lists(&lists, 5);
        let with = algo2_slinegraph(&h, 3, &Strategy::default());
        let without = algo2_slinegraph(&h, 3, &Strategy::default().with_pruning(false));
        assert_eq!(with.edges, without.edges);
        assert!(
            with.stats.total().edges_processed < without.stats.total().edges_processed,
            "pruning should skip small edges"
        );
    }

    #[test]
    fn edges_are_upper_triangular_and_sorted() {
        let mut rng = StdRng::seed_from_u64(80);
        let h = random_hypergraph(&mut rng);
        let r = algo2_slinegraph(&h, 1, &Strategy::default());
        for w in r.edges.windows(2) {
            assert!(w[0] < w[1], "sorted");
        }
        for &(i, j) in &r.edges {
            assert!(i < j, "upper triangular");
        }
    }

    #[test]
    fn lower_triangle_matches_upper() {
        use crate::strategy::TriangleSide;
        let mut rng = StdRng::seed_from_u64(90);
        for _ in 0..15 {
            let h = random_hypergraph(&mut rng);
            let s = rng.gen_range(1..5u32);
            let upper = Strategy::default();
            let lower = Strategy::default().with_triangle(TriangleSide::Lower);
            let expect = algo2_slinegraph(&h, s, &upper).edges;
            assert_eq!(algo2_slinegraph(&h, s, &lower).edges, expect, "algo2 s={s}");
            assert_eq!(algo1_slinegraph(&h, s, &lower).edges, expect, "algo1 s={s}");
        }
    }

    #[test]
    fn lower_triangle_weighted_matches() {
        use crate::strategy::TriangleSide;
        let h = paper_h();
        let upper = algo2_slinegraph_weighted(&h, 1, &Strategy::default()).0;
        let lower = algo2_slinegraph_weighted(
            &h,
            1,
            &Strategy::default().with_triangle(TriangleSide::Lower),
        )
        .0;
        assert_eq!(upper, lower);
    }

    #[test]
    fn algo1_heuristics_off_still_exact() {
        use crate::strategy::Algo1Heuristics;
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..10 {
            let h = random_hypergraph(&mut rng);
            let s = rng.gen_range(1..5u32);
            let expect = algo1_slinegraph(&h, s, &Strategy::default()).edges;
            for skip_visited in [false, true] {
                for short_circuit in [false, true] {
                    let st = Strategy::default().with_algo1_heuristics(Algo1Heuristics {
                        skip_visited,
                        short_circuit,
                    });
                    assert_eq!(
                        algo1_slinegraph(&h, s, &st).edges,
                        expect,
                        "skip={skip_visited} sc={short_circuit} s={s}"
                    );
                }
            }
        }
    }

    #[test]
    fn skip_visited_reduces_intersections() {
        use crate::strategy::Algo1Heuristics;
        let h = paper_h();
        let on = algo1_slinegraph(&h, 2, &Strategy::default());
        let off = algo1_slinegraph(
            &h,
            2,
            &Strategy::default().with_algo1_heuristics(Algo1Heuristics {
                skip_visited: false,
                short_circuit: true,
            }),
        );
        assert_eq!(on.edges, off.edges);
        assert!(
            on.stats.total().set_intersections < off.stats.total().set_intersections,
            "visited-skipping must save intersections"
        );
    }

    #[test]
    fn s_zero_rejected() {
        let h = paper_h();
        let result = std::panic::catch_unwind(|| algo2_slinegraph(&h, 0, &Strategy::default()));
        assert!(result.is_err());
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_edge_lists(&[], 0);
        let r = algo2_slinegraph(&h, 1, &Strategy::default());
        assert!(r.edges.is_empty());
    }

    #[test]
    fn duplicate_edges_fully_overlap() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![0, 1, 2]], 3);
        let r = algo2_slinegraph(&h, 3, &Strategy::default());
        assert_eq!(r.edges, vec![(0, 1)]);
    }

    #[test]
    fn emitted_counts_match_output() {
        let mut rng = StdRng::seed_from_u64(81);
        let h = random_hypergraph(&mut rng);
        let r = algo2_slinegraph(&h, 1, &Strategy::default());
        assert_eq!(r.stats.total().edges_emitted as usize, r.edges.len());
    }
}
