//! Undirected graph storage in CSR form.
//!
//! s-line graphs come out of the overlap stage as edge lists; this type
//! turns them into a CSR adjacency suitable for the Stage-5 metric
//! kernels. Graphs are simple (no self loops, no parallel edges) and may
//! carry per-edge weights (the overlap counts, used for weighted drawings
//! like the paper's Figure 2).
//!
//! Construction is parallel end-to-end (histogram + prefix sum + scatter
//! into disjoint rows), with a fast path that skips the clean/sort/dedup
//! pass entirely when the input is already a sorted upper-triangle edge
//! list — which every s-line-graph edge list is. Untrusted inputs go
//! through the checked [`Graph::try_from_edges`] builders; internal edge
//! lists keep the infallible [`Graph::from_edges`] /
//! [`Graph::from_sorted_edges`] paths.

use hyperline_util::parallel::{
    exclusive_prefix_sum, num_threads, par_filter_map, par_for_each_indexed_mut, par_for_each_mut,
    par_map_range, par_map_slice, par_sort_unstable,
};

/// Error from the checked (`try_`) CSR builders: an edge endpoint
/// outside `0..num_vertices`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOutOfRange {
    /// The offending edge (first such edge in input order).
    pub edge: (u32, u32),
    /// The vertex-space size the edge violated.
    pub num_vertices: usize,
}

impl std::fmt::Display for EdgeOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge ({},{}) out of range {}",
            self.edge.0, self.edge.1, self.num_vertices
        )
    }
}

impl std::error::Error for EdgeOutOfRange {}

/// Fixed chunk size for the parallel scan/clean passes. A function of
/// nothing but the input length, so results never depend on the ambient
/// worker count.
const SCAN_CHUNK: usize = 1 << 16;

/// Below this many clean edges the serial builder wins (thread spawn
/// costs more than the work). Decided by length alone.
const PAR_BUILD_MIN: usize = 1 << 14;

/// First out-of-range item in input order, if any (parallel scan).
/// Generic over the item so the pair and weighted-triple builders share
/// one scan; `ends` projects an item to its two endpoints.
fn first_out_of_range<T, E>(num_vertices: usize, items: &[T], ends: E) -> Option<(u32, u32)>
where
    T: Copy + Sync,
    E: Fn(T) -> (u32, u32) + Sync,
{
    let nchunks = items.len().div_ceil(SCAN_CHUNK).max(1);
    par_map_range(nchunks, |c| {
        items[c * SCAN_CHUNK..((c + 1) * SCAN_CHUNK).min(items.len())]
            .iter()
            .copied()
            .map(&ends)
            .find(|&(a, b)| a as usize >= num_vertices || b as usize >= num_vertices)
    })
    .into_iter()
    .flatten()
    .next()
}

/// True when `edges` is already in canonical clean form: strictly
/// ascending `(a, b)` pairs with `a < b` — sorted, no self loops, no
/// duplicates. Every s-line-graph edge list has this shape.
fn is_sorted_upper(edges: &[(u32, u32)]) -> bool {
    let nchunks = edges.len().div_ceil(SCAN_CHUNK).max(1);
    par_map_range(nchunks, |c| {
        let lo = c * SCAN_CHUNK;
        let hi = ((c + 1) * SCAN_CHUNK).min(edges.len());
        let chunk = &edges[lo..hi];
        chunk.iter().all(|&(a, b)| a < b)
            && chunk.windows(2).all(|w| w[0] < w[1])
            && (lo == 0 || hi == lo || edges[lo - 1] < edges[lo])
    })
    .into_iter()
    .all(|ok| ok)
}

/// One worker's slice of a row-parallel fill: a contiguous vertex range
/// plus the CSR storage slice its rows own.
struct RowSegment<'a, T> {
    v_lo: usize,
    v_hi: usize,
    out: &'a mut [T],
}

/// Contiguous vertex ranges covering all rows, balanced by entry count,
/// one per available worker.
fn row_ranges(offsets: &[usize]) -> Vec<(usize, usize)> {
    let num_vertices = offsets.len() - 1;
    let total = offsets[num_vertices];
    let workers = num_threads().min(num_vertices.max(1));
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0usize);
    for k in 1..workers {
        let target = k * total / workers;
        bounds.push(offsets.partition_point(|&o| o < target).min(num_vertices));
    }
    bounds.push(num_vertices);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Splits a CSR-aligned storage array into the disjoint slices owned by
/// each vertex range of `ranges`.
fn split_by_rows<'a, T>(
    data: &'a mut [T],
    offsets: &[usize],
    ranges: &[(usize, usize)],
) -> Vec<RowSegment<'a, T>> {
    let mut rest = data;
    let mut segs = Vec::with_capacity(ranges.len());
    for &(v_lo, v_hi) in ranges {
        let (head, tail) = rest.split_at_mut(offsets[v_hi] - offsets[v_lo]);
        rest = tail;
        segs.push(RowSegment {
            v_lo,
            v_hi,
            out: head,
        });
    }
    segs
}

/// An undirected simple graph over vertices `0..num_vertices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list. Self loops are dropped,
    /// duplicate edges (in either orientation) are collapsed.
    ///
    /// Already-clean inputs (sorted upper-triangle, the shape every
    /// s-line-graph edge list has) are detected with one parallel scan
    /// and skip the clean/sort/dedup pass entirely.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= num_vertices` (internal edge lists
    /// satisfy this by construction; untrusted inputs should use
    /// [`Graph::try_from_edges`]).
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        Self::try_from_edges(num_vertices, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`Graph::from_edges`] for untrusted inputs
    /// (e.g. dataset loads): returns an error instead of panicking when
    /// an endpoint is out of range.
    pub fn try_from_edges(
        num_vertices: usize,
        edges: &[(u32, u32)],
    ) -> Result<Self, EdgeOutOfRange> {
        if let Some(edge) = first_out_of_range(num_vertices, edges, |e| e) {
            return Err(EdgeOutOfRange { edge, num_vertices });
        }
        if is_sorted_upper(edges) {
            return Ok(Self::build_clean(num_vertices, edges));
        }
        // Clean in parallel: drop self loops, orient as (min, max).
        let mut clean = par_filter_map(edges, |&(a, b)| {
            (a != b).then_some(if a < b { (a, b) } else { (b, a) })
        });
        par_sort_unstable(&mut clean);
        clean.dedup();
        Ok(Self::build_clean(num_vertices, &clean))
    }

    /// Fast path for edge lists known to be sorted upper-triangle
    /// (strictly ascending `(a, b)` with `a < b`, all endpoints in
    /// range): skips the detection scan as well as the clean/sort/dedup
    /// pass. The precondition is debug-checked; release builds trust the
    /// caller (a violation stays memory-safe but may panic or produce an
    /// unspecified graph).
    pub fn from_sorted_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        debug_assert!(
            first_out_of_range(num_vertices, edges, |e| e).is_none(),
            "from_sorted_edges: endpoint out of range"
        );
        debug_assert!(
            is_sorted_upper(edges),
            "from_sorted_edges: input not strictly sorted upper-triangle"
        );
        Self::build_clean(num_vertices, edges)
    }

    /// Builds the CSR from canonical clean edges (sorted, `a < b`,
    /// unique, in range).
    ///
    /// Layout trick: each row stores its backward targets (the `a`s of
    /// edges `(a, v)` — all `< v`, arriving in ascending order) first,
    /// then its forward targets (the `b`s of edges `(v, b)` — all `> v`,
    /// a contiguous range of the sorted input). Rows therefore come out
    /// fully sorted with **no per-row sort and no comparison sort of a
    /// transpose** — degree histograms, a parallel prefix sum and
    /// counting scatters into disjoint rows do all the work.
    fn build_clean(num_vertices: usize, clean: &[(u32, u32)]) -> Self {
        if clean.len() < PAR_BUILD_MIN || num_vertices < 2 {
            return Self::build_clean_serial(num_vertices, clean);
        }
        let m = clean.len();
        // Forward row boundaries: `clean` is sorted by first endpoint, so
        // row a's forward targets are one contiguous edge range.
        let fstart: Vec<usize> = par_map_range(num_vertices + 1, |v| {
            clean.partition_point(|e| (e.0 as usize) < v)
        });
        // Backward degree histogram: workers own disjoint vertex ranges
        // and count second endpoints falling in their range. Deliberate
        // trade-off: every worker reads the whole edge list (O(workers·m)
        // sequential, cache-friendly reads here and in the scatter below)
        // in exchange for purely disjoint writes in safe code — the
        // alternative (per-chunk histograms + per-worker cursors) needs
        // interleaved writes or a workers×V cursor matrix.
        let workers = num_threads().min(num_vertices).max(1);
        let vchunk = num_vertices.div_ceil(workers);
        let mut bdeg = vec![0usize; num_vertices];
        {
            let mut blocks: Vec<&mut [usize]> = bdeg.chunks_mut(vchunk).collect();
            par_for_each_indexed_mut(&mut blocks, |i, block| {
                let lo = (i * vchunk) as u32;
                let hi = lo + block.len() as u32;
                for &(_, b) in clean {
                    if b >= lo && b < hi {
                        block[(b - lo) as usize] += 1;
                    }
                }
            });
        }
        // Degrees → offsets: parallel prefix sum.
        let mut offsets: Vec<usize> = par_map_range(num_vertices + 1, |v| {
            if v < num_vertices {
                (fstart[v + 1] - fstart[v]) + bdeg[v]
            } else {
                0
            }
        });
        let total = exclusive_prefix_sum(&mut offsets);
        debug_assert_eq!(total, 2 * m);
        // Scatter into disjoint rows. Workers own entry-balanced vertex
        // ranges; each scans the edge list once, placing backward targets
        // by per-row cursor (edge order = ascending `a`, so they land
        // sorted) and copying the contiguous forward range after them.
        let mut targets = vec![0u32; 2 * m];
        let ranges = row_ranges(&offsets);
        let mut segs = split_by_rows(&mut targets, &offsets, &ranges);
        par_for_each_mut(&mut segs, |seg| {
            let base = offsets[seg.v_lo];
            let (v_lo, v_hi) = (seg.v_lo as u32, seg.v_hi as u32);
            // Backward fill: cursor per owned row, starting at the row
            // head (backward targets come first).
            let mut cursor: Vec<usize> = (seg.v_lo..seg.v_hi).map(|v| offsets[v] - base).collect();
            for &(a, b) in clean {
                if b >= v_lo && b < v_hi {
                    let c = &mut cursor[(b - v_lo) as usize];
                    seg.out[*c] = a;
                    *c += 1;
                }
            }
            // Forward fill: contiguous copy after each row's backward part.
            for v in seg.v_lo..seg.v_hi {
                let start = offsets[v] - base + bdeg[v];
                for (k, &(_, b)) in clean[fstart[v]..fstart[v + 1]].iter().enumerate() {
                    seg.out[start + k] = b;
                }
            }
        });
        Self {
            offsets,
            targets,
            num_edges: m,
        }
    }

    /// Serial CSR build for small inputs (counting sort + per-row sort);
    /// produces exactly the same graph as the parallel path.
    fn build_clean_serial(num_vertices: usize, clean: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        for &(a, b) in clean {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut targets = vec![0u32; clean.len() * 2];
        let mut cursor = counts;
        for &(a, b) in clean {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each row receives targets in ascending order of the opposite
        // endpoint *per orientation*; rows are the merge of "b's from
        // (a,b)" (ascending) and "a's from (a,b) with b = row" (ascending),
        // so a final per-row sort is still required.
        let mut g = Self {
            offsets,
            targets,
            num_edges: clean.len(),
        };
        for v in 0..num_vertices {
            let (s, e) = (g.offsets[v], g.offsets[v + 1]);
            g.targets[s..e].sort_unstable();
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// True if `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(min, max)` pairs.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Vertices with degree ≥ 1.
    pub fn non_isolated_count(&self) -> usize {
        (0..self.num_vertices() as u32)
            .filter(|&v| self.degree(v) > 0)
            .count()
    }

    /// The subgraph induced by `vertices` (which need not be sorted).
    /// Vertex `i` of the result corresponds to `vertices[i]` after
    /// ascending sort; the sorted ID mapping is returned alongside.
    pub fn induced(&self, vertices: &[u32]) -> (Graph, Vec<u32>) {
        let mut keep: Vec<u32> = vertices.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut rename = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in keep.iter().enumerate() {
            rename[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for &old in &keep {
            for &w in self.neighbors(old) {
                if old < w && rename[w as usize] != u32::MAX {
                    edges.push((rename[old as usize], rename[w as usize]));
                }
            }
        }
        (Graph::from_edges(keep.len(), &edges), keep)
    }
}

/// A graph plus per-edge weights (overlap counts in the s-line graph).
///
/// Weights are stored per directed arc, aligned with [`Graph::neighbors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    /// The underlying simple graph.
    pub graph: Graph,
    weights: Vec<u32>,
}

impl WeightedGraph {
    /// Builds from weighted undirected edges; duplicate edges keep the
    /// maximum weight.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= num_vertices`; untrusted inputs
    /// should use [`WeightedGraph::try_from_edges`].
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32, u32)]) -> Self {
        Self::try_from_edges(num_vertices, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked variant of [`WeightedGraph::from_edges`] for untrusted
    /// inputs: returns an error instead of panicking when an endpoint is
    /// out of range.
    pub fn try_from_edges(
        num_vertices: usize,
        edges: &[(u32, u32, u32)],
    ) -> Result<Self, EdgeOutOfRange> {
        // Range check, then clean: drop loops, orient as (min, max),
        // parallel sort, collapse duplicates keeping the max weight
        // (ascending sort puts the max last in each group).
        if let Some(edge) = first_out_of_range(num_vertices, edges, |(a, b, _)| (a, b)) {
            return Err(EdgeOutOfRange { edge, num_vertices });
        }
        let mut clean = par_filter_map(edges, |&(a, b, w)| {
            (a != b).then_some(if a < b { (a, b, w) } else { (b, a, w) })
        });
        par_sort_unstable(&mut clean);
        clean.dedup_by(|cur, prev| {
            if cur.0 == prev.0 && cur.1 == prev.1 {
                prev.2 = prev.2.max(cur.2);
                true
            } else {
                false
            }
        });
        let pairs: Vec<(u32, u32)> = par_map_slice(&clean, |&(a, b, _)| (a, b));
        let graph = Graph::from_sorted_edges(num_vertices, &pairs);
        // Weights aligned with the CSR targets, filled row-parallel past
        // a small-input threshold: each arc's weight is one binary
        // search into the sorted clean triples (no serial post-pass).
        let mut weights = vec![0u32; graph.targets.len()];
        let fill_rows = |v_lo: usize, v_hi: usize, out: &mut [u32]| {
            let base = graph.offsets[v_lo];
            for v in v_lo..v_hi {
                let v32 = v as u32;
                let start = graph.offsets[v] - base;
                for (k, &u) in graph.neighbors(v32).iter().enumerate() {
                    let key = if v32 < u { (v32, u) } else { (u, v32) };
                    let idx = clean
                        .binary_search_by(|t| (t.0, t.1).cmp(&key))
                        .expect("edge must exist in clean triples");
                    out[start + k] = clean[idx].2;
                }
            }
        };
        if weights.len() < PAR_BUILD_MIN {
            fill_rows(0, graph.num_vertices(), &mut weights);
        } else {
            let ranges = row_ranges(&graph.offsets);
            let mut segs = split_by_rows(&mut weights, &graph.offsets, &ranges);
            par_for_each_mut(&mut segs, |seg| fill_rows(seg.v_lo, seg.v_hi, seg.out));
        }
        Ok(Self { graph, weights })
    }

    /// Weights aligned with `graph.neighbors(v)`.
    pub fn neighbor_weights(&self, v: u32) -> &[u32] {
        &self.weights[self.graph.offsets[v as usize]..self.graph.offsets[v as usize + 1]]
    }

    /// Weight of edge `{u, v}`, or `None` if absent.
    pub fn weight(&self, u: u32, v: u32) -> Option<u32> {
        let start = self.graph.offsets[u as usize];
        self.graph
            .neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[start + i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(4), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.non_isolated_count(), 4);
    }

    #[test]
    fn self_loops_dropped_duplicates_collapsed() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn iter_edges_each_once() {
        let g = triangle_plus_tail();
        let edges: Vec<(u32, u32)> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = triangle_plus_tail();
        let sum: usize = (0..5u32).map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_bounds_checked() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn weighted_graph_stores_weights() {
        let w = WeightedGraph::from_edges(3, &[(0, 1, 5), (1, 2, 2)]);
        assert_eq!(w.weight(0, 1), Some(5));
        assert_eq!(w.weight(1, 0), Some(5));
        assert_eq!(w.weight(1, 2), Some(2));
        assert_eq!(w.weight(0, 2), None);
        assert_eq!(w.neighbor_weights(1), &[5, 2]);
    }

    #[test]
    fn weighted_duplicates_keep_max() {
        let w = WeightedGraph::from_edges(2, &[(0, 1, 2), (1, 0, 7)]);
        assert_eq!(w.weight(0, 1), Some(7));
        assert_eq!(w.graph.num_edges(), 1);
    }

    #[test]
    fn try_from_edges_reports_first_bad_edge() {
        let err = Graph::try_from_edges(3, &[(0, 1), (1, 5), (2, 9)]).unwrap_err();
        assert_eq!(err.edge, (1, 5));
        assert_eq!(err.num_vertices, 3);
        assert!(err.to_string().contains("out of range"));
        let err = WeightedGraph::try_from_edges(2, &[(0, 1, 3), (0, 2, 1)]).unwrap_err();
        assert_eq!(err.edge, (0, 2));
        assert!(Graph::try_from_edges(3, &[(0, 2), (1, 2)]).is_ok());
    }

    #[test]
    fn sorted_fast_path_matches_general_builder() {
        // Strictly sorted upper-triangle input takes the fast path in
        // from_edges and the explicit from_sorted_edges; both must equal
        // the general (shuffled-input) construction.
        let mut x = 9u64;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..120_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % 5_000) as u32;
            let b = ((x >> 20) % 5_000) as u32;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let fast = Graph::from_sorted_edges(5_000, &edges);
        let auto = Graph::from_edges(5_000, &edges);
        let mut shuffled = edges.clone();
        shuffled.reverse();
        shuffled.extend(edges.iter().map(|&(a, b)| (b, a))); // duplicates, both orientations
        let general = Graph::from_edges(5_000, &shuffled);
        assert_eq!(fast, auto);
        assert_eq!(fast, general);
        assert_eq!(fast.num_edges(), edges.len());
        for v in 0..5_000u32 {
            assert!(fast.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parallel_build_identical_across_worker_counts() {
        use hyperline_util::parallel::with_threads;
        let mut x = 3u64;
        let edges: Vec<(u32, u32)> = (0..80_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 700) as u32, ((x >> 24) % 700) as u32)
            })
            .collect();
        let reference = with_threads(1, || Graph::from_edges(700, &edges));
        for workers in [2usize, 7, 16] {
            let g = with_threads(workers, || Graph::from_edges(700, &edges));
            assert_eq!(g, reference, "workers={workers}");
        }
    }

    #[test]
    fn weighted_parallel_matches_serial_semantics() {
        // Big enough to hit the parallel path; duplicate (a,b) groups
        // with different weights must keep the max.
        let mut x = 77u64;
        let edges: Vec<(u32, u32, u32)> = (0..40_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (
                    (x % 300) as u32,
                    ((x >> 16) % 300) as u32,
                    (x >> 40) as u32 % 100,
                )
            })
            .collect();
        let wg = WeightedGraph::from_edges(300, &edges);
        // Reference semantics computed naively.
        let mut best = std::collections::HashMap::new();
        for &(a, b, w) in &edges {
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let e = best.entry(key).or_insert(0u32);
            *e = (*e).max(w);
        }
        assert_eq!(wg.graph.num_edges(), best.len());
        for (&(a, b), &w) in &best {
            assert_eq!(wg.weight(a, b), Some(w), "({a},{b})");
            assert_eq!(wg.weight(b, a), Some(w), "({b},{a})");
        }
    }
}
