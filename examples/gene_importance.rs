//! Identifying genes critical to pathogenic viral response (§V-A, Fig. 5).
//!
//! Builds a virology-transcriptomics-like hypergraph: ~2500 genes as
//! hyperedges over 201 experimental-condition vertices, with six planted
//! "important genes" that are pairwise perturbed in > 100 common
//! conditions (the paper identifies ISG15, IL6, ATF3, RSAD2, USP18,
//! IFIT1). Computes s-line graphs at s = 1, 3, 5, then s-connected
//! components and s-betweenness centrality — the high-s graphs isolate
//! the important genes exactly as in the paper's Figure 5.
//!
//! Run with: `cargo run --release --example gene_importance`

use hyperline::prelude::*;
use hyperline::util::Table;

/// The six gene names from the paper, assigned to the planted hyperedges.
const IMPORTANT_GENES: [&str; 6] = ["ISG15", "IL6", "ATF3", "RSAD2", "USP18", "IFIT1"];

fn main() {
    let seed = 7;
    let h = Profile::Genomics.generate(seed);
    let planted = Profile::Genomics.planted_edge_range(seed).unwrap();
    let gene_name = |e: u32| -> String {
        if planted.contains(&e) {
            IMPORTANT_GENES[(e - planted.start) as usize].to_string()
        } else {
            format!("gene-{e}")
        }
    };
    println!(
        "virology genomics hypergraph: {} genes (hyperedges) × {} conditions (vertices)",
        h.num_edges(),
        h.num_vertices()
    );

    for s in [1u32, 3, 5] {
        let run = run_pipeline(&h, &PipelineConfig::new(s));
        let slg = &run.line_graph;
        let comps = run.components.unwrap();
        println!(
            "\ns = {s}: line graph has {} vertices, {} edges, {} component(s)",
            slg.num_vertices(),
            slg.num_edges(),
            comps.len()
        );
        let bc = slg.betweenness();
        let mut table = Table::new(["gene", "s-betweenness"]);
        for &(e, score) in bc.iter().take(6) {
            table.row([gene_name(e), format!("{score:.4}")]);
        }
        table.print();
    }

    // At very high s only the planted genes survive — they share > 100
    // conditions pairwise, like IFIT1/USP18 in the paper.
    let run = run_pipeline(&h, &PipelineConfig::new(100));
    let surviving: Vec<String> = run
        .components
        .unwrap()
        .iter()
        .flatten()
        .map(|&e| gene_name(e))
        .collect();
    println!("\nGenes s-connected at s = 100 (perturbed together in >100 conditions):");
    println!("  {}", surviving.join(", "));
}
