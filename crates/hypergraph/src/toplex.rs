//! Stage 2 (optional): toplex computation and hypergraph simplification.
//!
//! A *toplex* is a maximal hyperedge: an edge `e` with no strict superset
//! `f ⊋ e` in the hypergraph. The simplification `Ȟ = (V, Ě)` keeps one
//! copy of every toplex; working on `Ȟ` can substantially shrink the
//! inputs to the later stages.
//!
//! The algorithm processes edges in descending size order and tests each
//! edge for containment against the already-kept toplexes, restricting
//! candidates via the member vertex with the fewest kept toplexes (the
//! standard extremal-sets trick of Marinov et al., cited by the paper).

use crate::hypergraph::Hypergraph;

/// Result of toplex computation.
#[derive(Debug, Clone)]
pub struct Toplexes {
    /// Original IDs of the kept (maximal, deduplicated) edges, ascending.
    pub toplex_ids: Vec<u32>,
    /// The simplified hypergraph `Ȟ` on the same vertex set, edges
    /// renumbered `0..toplex_ids.len()` in `toplex_ids` order.
    pub simplified: Hypergraph,
}

/// Returns true if sorted slice `sub` is a subset of sorted slice `sup`.
fn is_subset(sub: &[u32], sup: &[u32]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut j = 0usize;
    for &x in sub {
        // Advance in sup until we find x or pass it.
        while j < sup.len() && sup[j] < x {
            j += 1;
        }
        if j == sup.len() || sup[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Computes the toplexes of `h` and the simplified hypergraph.
///
/// Duplicate edges keep a single representative (the one with the smallest
/// original ID, because ties process in ascending ID order).
pub fn toplexes(h: &Hypergraph) -> Toplexes {
    let m = h.num_edges();
    // Order: size descending, ID ascending within equal size.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by_key(|&e| (std::cmp::Reverse(h.edge_size(e)), e));

    // For each vertex, the kept toplexes containing it.
    let mut vertex_toplexes: Vec<Vec<u32>> = vec![Vec::new(); h.num_vertices()];
    let mut kept: Vec<u32> = Vec::new();

    for &e in &order {
        let members = h.edge_vertices(e);
        if members.is_empty() {
            // Empty edges are subsets of everything; never toplexes unless
            // the hypergraph has only empty edges — treated as non-maximal.
            continue;
        }
        // Pick the member vertex with the fewest kept toplexes.
        let pivot = members
            .iter()
            .copied()
            .min_by_key(|&v| vertex_toplexes[v as usize].len())
            .unwrap();
        let contained = vertex_toplexes[pivot as usize]
            .iter()
            .any(|&t| is_subset(members, h.edge_vertices(t)));
        if contained {
            continue;
        }
        kept.push(e);
        for &v in members {
            vertex_toplexes[v as usize].push(e);
        }
    }

    kept.sort_unstable();
    let lists: Vec<Vec<u32>> = kept.iter().map(|&e| h.edge_vertices(e).to_vec()).collect();
    let simplified = Hypergraph::from_edge_lists(&lists, h.num_vertices());
    Toplexes {
        toplex_ids: kept,
        simplified,
    }
}

/// True if `h` is *simple*: every edge is a toplex (`H == Ȟ`).
pub fn is_simple(h: &Hypergraph) -> bool {
    toplexes(h).toplex_ids.len() == h.num_edges()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
        assert!(is_subset(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn paper_example_toplexes() {
        // Edges: {a,b,c}, {b,c,d}, {a,b,c,d,e}, {e,f}.
        // Edges 0 and 1 are subsets of edge 2; toplexes are {2, 3}.
        let h = Hypergraph::paper_example();
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![2, 3]);
        assert_eq!(t.simplified.num_edges(), 2);
        assert_eq!(t.simplified.edge_vertices(0), &[0, 1, 2, 3, 4]);
        assert_eq!(t.simplified.edge_vertices(1), &[4, 5]);
        assert!(!is_simple(&h));
        assert!(is_simple(&t.simplified));
    }

    #[test]
    fn duplicates_keep_one() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 1], vec![2]], 3);
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![0, 2]);
    }

    #[test]
    fn all_maximal_when_disjoint() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![2, 3], vec![4]], 5);
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![0, 1, 2]);
        assert!(is_simple(&h));
    }

    #[test]
    fn chain_of_subsets() {
        let h =
            Hypergraph::from_edge_lists(&[vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]], 4);
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![3]);
    }

    #[test]
    fn overlapping_but_incomparable_edges_all_kept() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]], 5);
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_edges_dropped() {
        let h = Hypergraph::from_edge_lists(&[vec![], vec![0]], 1);
        let t = toplexes(&h);
        assert_eq!(t.toplex_ids, vec![1]);
    }

    #[test]
    fn brute_force_agreement_random() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = rng.gen_range(1..10usize);
            let m = rng.gen_range(1..15usize);
            let lists: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(1..=n);
                    let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let h = Hypergraph::from_edge_lists(&lists, n);
            let got = toplexes(&h).toplex_ids;
            // Brute force: e is kept iff no *other kept or unkept* edge is a
            // strict superset, and among equal duplicates only the smallest
            // ID is kept.
            let mut expect = Vec::new();
            'outer: for e in 0..m {
                let me = h.edge_vertices(e as u32);
                for f in 0..m {
                    if f == e {
                        continue;
                    }
                    let other = h.edge_vertices(f as u32);
                    if is_subset(me, other) && (other.len() > me.len() || f < e) {
                        continue 'outer;
                    }
                }
                expect.push(e as u32);
            }
            assert_eq!(got, expect, "lists={lists:?}");
        }
    }
}
