//! Shim sync types with the same API shape as `std::sync`.
//!
//! Each shim owns the *real* std primitive plus a small registration
//! cell. Outside a model run (no scheduler context on the current OS
//! thread) every operation delegates straight to std — zero behavioural
//! difference, so production code compiled against these types under
//! `--cfg hyperline_sched` still works in ordinary tests. Inside a run,
//! operations route through the scheduler runtime instead and become
//! explored scheduling points.
//!
//! Registration is lazy and per-run: the cell packs `(epoch << 20) |
//! (id + 1)` where `epoch` identifies the current [`crate::explore`]
//! run, so the same shim object (even a `static`) re-registers cleanly
//! on every schedule. Model stores are written through to the real
//! primitive so that teardown paths (running while a failure unwinds
//! the model threads) read plausible values.

use crate::rt::{self, Ctx};
use std::sync::atomic::Ordering as StdOrdering;

pub use std::sync::atomic::Ordering;
pub use std::sync::{LockResult, PoisonError};

/// Resolves (registering on first touch this run) the runtime id for a
/// shim object, given its packed registration cell.
fn lookup(
    reg: &std::sync::atomic::AtomicU64,
    ctx: &Ctx,
    register: impl FnOnce() -> usize,
) -> usize {
    let packed = reg.load(StdOrdering::Relaxed);
    if packed != 0 && (packed >> 20) == ctx.rt.epoch {
        ((packed & 0xF_FFFF) - 1) as usize
    } else {
        let id = register();
        reg.store((ctx.rt.epoch << 20) | (id as u64 + 1), StdOrdering::Relaxed);
        id
    }
}

/// Run when the model run has been aborted: during an unwind, fall back
/// to the real primitive so `Drop` impls can finish; otherwise start the
/// teardown unwind for this thread.
fn on_abort<T>(direct: impl FnOnce() -> T) -> T {
    if std::thread::panicking() {
        direct()
    } else {
        std::panic::panic_any(rt::SchedAbort)
    }
}

macro_rules! shim_atomic {
    ($Atomic:ident, $Raw:ty, $to:expr, $from:expr) => {
        pub struct $Atomic {
            real: std::sync::atomic::$Atomic,
            reg: std::sync::atomic::AtomicU64,
        }

        impl $Atomic {
            pub const fn new(v: $Raw) -> Self {
                Self {
                    real: std::sync::atomic::$Atomic::new(v),
                    reg: std::sync::atomic::AtomicU64::new(0),
                }
            }

            #[inline]
            fn model(&self) -> Option<(Ctx, usize)> {
                let ctx = rt::current_ctx()?;
                let init = ($to)(self.real.load(StdOrdering::Relaxed));
                let loc = lookup(&self.reg, &ctx, || ctx.rt.register_location(init));
                Some((ctx, loc))
            }

            pub fn load(&self, order: Ordering) -> $Raw {
                match self.model() {
                    None => self.real.load(order),
                    Some((ctx, loc)) => match ctx.rt.atomic_load(ctx.tid, loc, order) {
                        Ok(v) => ($from)(v),
                        Err(_) => on_abort(|| self.real.load(StdOrdering::Relaxed)),
                    },
                }
            }

            pub fn store(&self, v: $Raw, order: Ordering) {
                match self.model() {
                    None => self.real.store(v, order),
                    Some((ctx, loc)) => {
                        match ctx.rt.atomic_store(ctx.tid, loc, order, None, ($to)(v)) {
                            Ok(_) => self.real.store(v, StdOrdering::Relaxed),
                            Err(_) => on_abort(|| self.real.store(v, StdOrdering::Relaxed)),
                        }
                    }
                }
            }

            fn rmw(
                &self,
                order: Ordering,
                direct: impl FnOnce(&std::sync::atomic::$Atomic) -> $Raw,
                f: impl Fn($Raw) -> $Raw,
            ) -> $Raw {
                match self.model() {
                    None => direct(&self.real),
                    Some((ctx, loc)) => {
                        let mut g = |u: u64| ($to)(f(($from)(u)));
                        match ctx.rt.atomic_store(ctx.tid, loc, order, Some(&mut g), 0) {
                            Ok(prev) => {
                                let prev = ($from)(prev);
                                self.real.store(f(prev), StdOrdering::Relaxed);
                                prev
                            }
                            Err(_) => on_abort(|| direct(&self.real)),
                        }
                    }
                }
            }

            pub fn swap(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.swap(v, order), |_| v)
            }

            pub fn fetch_add(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_add(v, order), |p| p.wrapping_add(v))
            }

            pub fn fetch_sub(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_sub(v, order), |p| p.wrapping_sub(v))
            }

            pub fn fetch_or(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_or(v, order), |p| p | v)
            }

            pub fn fetch_and(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_and(v, order), |p| p & v)
            }

            pub fn fetch_max(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_max(v, order), |p| p.max(v))
            }

            pub fn fetch_min(&self, v: $Raw, order: Ordering) -> $Raw {
                self.rmw(order, |r| r.fetch_min(v, order), |p| p.min(v))
            }

            pub fn into_inner(self) -> $Raw {
                self.real.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $Raw {
                self.real.get_mut()
            }
        }

        impl Default for $Atomic {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $Atomic {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.load(Ordering::Relaxed), f)
            }
        }

        impl From<$Raw> for $Atomic {
            fn from(v: $Raw) -> Self {
                Self::new(v)
            }
        }
    };
}

shim_atomic!(AtomicU64, u64, |v: u64| v, |v: u64| v);
shim_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
shim_atomic!(AtomicU32, u32, |v: u32| v as u64, |v: u64| v as u32);
shim_atomic!(AtomicI64, i64, |v: i64| v as u64, |v: u64| v as i64);

/// `AtomicBool` is not covered by the integer macro (no arithmetic).
pub struct AtomicBool {
    real: std::sync::atomic::AtomicBool,
    reg: std::sync::atomic::AtomicU64,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            real: std::sync::atomic::AtomicBool::new(v),
            reg: std::sync::atomic::AtomicU64::new(0),
        }
    }

    #[inline]
    fn model(&self) -> Option<(Ctx, usize)> {
        let ctx = rt::current_ctx()?;
        let init = self.real.load(StdOrdering::Relaxed) as u64;
        let loc = lookup(&self.reg, &ctx, || ctx.rt.register_location(init));
        Some((ctx, loc))
    }

    pub fn load(&self, order: Ordering) -> bool {
        match self.model() {
            None => self.real.load(order),
            Some((ctx, loc)) => match ctx.rt.atomic_load(ctx.tid, loc, order) {
                Ok(v) => v != 0,
                Err(_) => on_abort(|| self.real.load(StdOrdering::Relaxed)),
            },
        }
    }

    pub fn store(&self, v: bool, order: Ordering) {
        match self.model() {
            None => self.real.store(v, order),
            Some((ctx, loc)) => match ctx.rt.atomic_store(ctx.tid, loc, order, None, v as u64) {
                Ok(_) => self.real.store(v, StdOrdering::Relaxed),
                Err(_) => on_abort(|| self.real.store(v, StdOrdering::Relaxed)),
            },
        }
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        match self.model() {
            None => self.real.swap(v, order),
            Some((ctx, loc)) => {
                let mut g = |_: u64| v as u64;
                match ctx.rt.atomic_store(ctx.tid, loc, order, Some(&mut g), 0) {
                    Ok(prev) => {
                        self.real.store(v, StdOrdering::Relaxed);
                        prev != 0
                    }
                    Err(_) => on_abort(|| self.real.swap(v, order)),
                }
            }
        }
    }

    pub fn into_inner(self) -> bool {
        self.real.into_inner()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.load(Ordering::Relaxed), f)
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

/// Shim mutex. In a model run, mutual exclusion is enforced by the
/// scheduler (blocking is model-blocking, i.e. a schedule choice); the
/// real `std::sync::Mutex` is still locked by the model owner so the
/// guard can hand out `&mut T` safely.
pub struct Mutex<T> {
    reg: std::sync::atomic::AtomicU64,
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            reg: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Mutex::new(t),
        }
    }

    #[inline]
    fn model(&self) -> Option<(Ctx, usize)> {
        let ctx = rt::current_ctx()?;
        let loc = lookup(&self.reg, &ctx, || ctx.rt.register_mutex());
        Some((ctx, loc))
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.model() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    mx: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    mx: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
            Some((ctx, loc)) => {
                if ctx.rt.mutex_lock(ctx.tid, loc).is_err() {
                    // Aborted: during teardown just take the real lock
                    // (its owner, if any, is unwinding and will drop it).
                    if !std::thread::panicking() {
                        std::panic::panic_any(rt::SchedAbort);
                    }
                }
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    mx: self,
                    inner: Some(g),
                    model: Some((ctx, loc)),
                })
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the scheduler, so the
        // next model owner can take it without contention.
        self.inner.take();
        if let Some((ctx, loc)) = self.model.take() {
            ctx.rt.mutex_unlock(ctx.tid, loc);
        }
    }
}

/// Shim mirror of `std::sync::WaitTimeoutResult`. Under the model a
/// timed wait never times out (see [`Condvar::wait_timeout`]), so this
/// always reports `timed_out() == false` on model schedules; on the
/// fallback (non-model) path it carries the real std result through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct Condvar {
    reg: std::sync::atomic::AtomicU64,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            reg: std::sync::atomic::AtomicU64::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn model(&self) -> Option<(Ctx, usize)> {
        let ctx = rt::current_ctx()?;
        let loc = lookup(&self.reg, &ctx, || ctx.rt.register_condvar());
        Some((ctx, loc))
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let mx = guard.mx;
                let std_guard = guard.inner.take().expect("guard still live");
                drop(guard); // inert now: both halves taken
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        mx,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        mx,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            Some((ctx, mloc)) => {
                let mx = guard.mx;
                guard.inner.take();
                drop(guard);
                let cv = lookup(&self.reg, &ctx, || ctx.rt.register_condvar());
                if ctx.rt.condvar_wait(ctx.tid, cv, mloc).is_err() && !std::thread::panicking() {
                    std::panic::panic_any(rt::SchedAbort);
                }
                mx.lock()
            }
        }
    }

    /// Timed wait, mirroring `std::sync::Condvar::wait_timeout`.
    ///
    /// Under the model the timeout is *not* explored: a timed wait
    /// behaves exactly like [`Condvar::wait`] and never reports expiry,
    /// because every wakeup the checker schedules is a notify. Timeout
    /// paths are real-time behavior, exercised by the std-world test
    /// suite; here they would only multiply schedules without adding
    /// protocol coverage.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            return match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult(false))),
                Err(p) => Err(PoisonError::new((p.into_inner(), WaitTimeoutResult(false)))),
            };
        }
        let mx = guard.mx;
        let std_guard = guard.inner.take().expect("guard still live");
        drop(guard); // inert now: both halves taken
        match self.inner.wait_timeout(std_guard, dur) {
            Ok((g, wt)) => Ok((
                MutexGuard {
                    mx,
                    inner: Some(g),
                    model: None,
                },
                WaitTimeoutResult(wt.timed_out()),
            )),
            Err(p) => {
                let (g, wt) = p.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        mx,
                        inner: Some(g),
                        model: None,
                    },
                    WaitTimeoutResult(wt.timed_out()),
                )))
            }
        }
    }

    pub fn notify_one(&self) {
        match self.model() {
            None => self.inner.notify_one(),
            Some((ctx, cv)) => {
                if ctx.rt.condvar_notify(ctx.tid, cv, false).is_err() && !std::thread::panicking() {
                    std::panic::panic_any(rt::SchedAbort);
                }
            }
        }
    }

    pub fn notify_all(&self) {
        match self.model() {
            None => self.inner.notify_all(),
            Some((ctx, cv)) => {
                if ctx.rt.condvar_notify(ctx.tid, cv, true).is_err() && !std::thread::panicking() {
                    std::panic::panic_any(rt::SchedAbort);
                }
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
