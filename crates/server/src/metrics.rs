//! Per-endpoint request/latency counters for `GET /metrics`.
//!
//! Lock-free atomics on a fixed route table: recording a sample is a
//! handful of relaxed atomic adds plus one histogram record, cheap
//! enough to run on every request. Latencies land in a log-bucketed
//! [`Histogram`] per route, so `/metrics` serves p50/p90/p99/p999 (and
//! still the exact average and max — the histogram tracks an exact sum
//! and max beside its buckets).

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use hyperline_util::telemetry::Histogram;
use std::time::Duration;

/// The server's routes (fixed at compile time so metrics need no map).
///
/// The discriminant is the index into [`Route::ALL`] and the metrics
/// table — pinned by `route_index_is_discriminant` below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Route {
    /// `GET /` — endpoint index.
    Index,
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/pipeline` — per-dataset pipeline stage spans.
    DebugPipeline,
    /// `GET /datasets`.
    ListDatasets,
    /// `POST /datasets`.
    AddDataset,
    /// `GET /datasets/{d}/stats`.
    Stats,
    /// `GET /datasets/{d}/slg`.
    Slg,
    /// `GET /datasets/{d}/components`.
    Components,
    /// `GET /datasets/{d}/betweenness`.
    Betweenness,
    /// `GET /datasets/{d}/spectrum`.
    Spectrum,
    /// `GET /datasets/{d}/sweep`.
    Sweep,
    /// `POST /query` (batched sub-queries).
    Query,
    /// `POST /admin/drain` — graceful drain trigger.
    AdminDrain,
    /// Anything else.
    NotFound,
}

impl Route {
    /// Every route, in `/metrics` display order.
    pub const ALL: [Route; 15] = [
        Route::Index,
        Route::Health,
        Route::Metrics,
        Route::DebugPipeline,
        Route::ListDatasets,
        Route::AddDataset,
        Route::Stats,
        Route::Slg,
        Route::Components,
        Route::Betweenness,
        Route::Spectrum,
        Route::Sweep,
        Route::Query,
        Route::AdminDrain,
        Route::NotFound,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Route::Index => "index",
            Route::Health => "healthz",
            Route::Metrics => "metrics",
            Route::DebugPipeline => "debug_pipeline",
            Route::ListDatasets => "list_datasets",
            Route::AddDataset => "add_dataset",
            Route::Stats => "stats",
            Route::Slg => "slg",
            Route::Components => "components",
            Route::Betweenness => "betweenness",
            Route::Spectrum => "spectrum",
            Route::Sweep => "sweep",
            Route::Query => "query",
            Route::AdminDrain => "admin_drain",
            Route::NotFound => "not_found",
        }
    }

    /// Index into [`Route::ALL`] — a direct discriminant cast, O(1) on
    /// every request record (was an O(n) table scan).
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Counters for one route.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Handling latencies, microseconds (p50/p99 plus exact sum/max).
    pub latency: Histogram,
}

/// All server counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    endpoints: [EndpointCounters; Route::ALL.len()],
    /// Connections accepted into the worker queue.
    pub connections_accepted: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Requests whose parse failed (400/417/501 responses that close
    /// the connection).
    pub bad_requests: AtomicU64,
    /// Responses streamed (chunked or close-delimited) instead of
    /// rendered into a fixed-length buffer.
    pub streamed_responses: AtomicU64,
    /// Streamed responses compressed with gzip (negotiated via
    /// `Accept-Encoding`).
    pub gzip_responses: AtomicU64,
    /// Gauge: connections sitting in the accept queue right now.
    pub queue_depth: AtomicI64,
    /// Gauge: workers currently serving a connection.
    pub busy_workers: AtomicI64,
    /// Time connections spent queued before a worker picked them up,
    /// microseconds.
    pub queue_wait: Histogram,
    /// Wall time spent inside the streaming gzip encoder per response,
    /// microseconds.
    pub gzip_encode: Histogram,
    /// Mid-stream client disconnects (`EPIPE`/`ECONNRESET`) handled as
    /// quiet closes instead of generic writer-stack errors.
    pub client_aborts: AtomicU64,
    /// Responses aborted because no write progress happened within the
    /// write timeout: either the worker's bounded hand-off buffer
    /// stayed full (`TimedOut` from the buffer) or the event loop's
    /// socket flush moved no bytes for the whole budget — both mean a
    /// dead or pathologically slow reader. (Formerly the per-thread
    /// `SO_SNDTIMEO` expiry; the evented core re-expresses the same
    /// defense without per-connection threads.)
    pub write_stalls: AtomicU64,
    /// Request heads abandoned by the cumulative head deadline
    /// (slow-loris defense).
    pub slow_loris_closes: AtomicU64,
    /// Requests whose deadline expired before their response finished
    /// (answered 504 or aborted mid-stream).
    pub deadline_expired: AtomicU64,
    /// Keep-alive connections that finished their in-flight work and
    /// closed cleanly during a drain.
    pub drained_connections: AtomicU64,
    /// Connections hard-closed because they outlived the drain bound.
    pub aborted_connections: AtomicU64,
    /// Gauge: connections currently owned by the event loop (accepted,
    /// not yet closed).
    pub event_loop_connections: AtomicI64,
    /// `epoll_wait` returns (readiness wakeups, including injected
    /// spurious ones under the `epoll.wait` failpoint).
    pub event_loop_wakeups: AtomicU64,
    /// Socket drains that stopped early on `EAGAIN` and re-armed
    /// `EPOLLOUT` — each one is backpressure from a reader slower than
    /// the response producer.
    pub eagain_yields: AtomicU64,
}

/// RAII increment of a gauge: `enter` adds one, dropping subtracts it.
/// Worker panics unwind through the guard, so gauges never drift.
pub struct GaugeGuard<'a>(&'a AtomicI64);

impl<'a> GaugeGuard<'a> {
    /// Increments `gauge` until the guard drops.
    pub fn enter(gauge: &'a AtomicI64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request on `route`.
    pub fn record(&self, route: Route, status: u16, elapsed: Duration) {
        let counters = &self.endpoints[route.index()];
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.latency.record_micros(elapsed);
    }

    /// The counters of one route.
    pub fn endpoint(&self, route: Route) -> &EndpointCounters {
        &self.endpoints[route.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_route() {
        let m = ServerMetrics::new();
        m.record(Route::Slg, 200, Duration::from_micros(120));
        m.record(Route::Slg, 200, Duration::from_micros(80));
        m.record(Route::Slg, 404, Duration::from_micros(10));
        m.record(Route::Health, 200, Duration::from_micros(5));
        let slg = m.endpoint(Route::Slg);
        assert_eq!(slg.requests.load(Ordering::Relaxed), 3);
        assert_eq!(slg.errors.load(Ordering::Relaxed), 1);
        assert_eq!(slg.latency.count(), 3);
        assert_eq!(slg.latency.sum(), 210);
        assert_eq!(slg.latency.max(), 120);
        assert_eq!(
            m.endpoint(Route::Health).requests.load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.endpoint(Route::Sweep).requests.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn route_names_unique() {
        let mut names: Vec<&str> = Route::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Route::ALL.len());
    }

    #[test]
    fn gauge_guard_balances_even_on_unwind() {
        let gauge = AtomicI64::new(0);
        {
            let _g = GaugeGuard::enter(&gauge);
            assert_eq!(gauge.load(Ordering::Relaxed), 1);
            let _h = GaugeGuard::enter(&gauge);
            assert_eq!(gauge.load(Ordering::Relaxed), 2);
        }
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
        // A panic unwinding through the guard still releases it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = GaugeGuard::enter(&gauge);
            panic!("worker died");
        }));
        assert!(result.is_err());
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn route_index_is_discriminant() {
        // The O(1) cast must agree with the table position for every
        // route — pins ALL's order to the enum declaration order.
        for (pos, &route) in Route::ALL.iter().enumerate() {
            assert_eq!(route.index(), pos, "{route:?}");
            assert_eq!(Route::ALL[route.index()], route);
        }
    }
}
