//! Shared low-level utilities for the `hyperline` workspace.
//!
//! This crate holds the infrastructure that every other crate leans on:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (FxHash) plus
//!   [`FxHashMap`]/[`FxHashSet`] aliases. Overlap counting in the s-line
//!   graph algorithms is hashmap-bound, so hashing speed matters
//!   (see the Rust Performance Book's "Hashing" chapter).
//! * [`bitset`] — a compact fixed-size bitset used for visited sets.
//! * [`timer`] — wall-clock timing helpers used by the experiment harness.
//! * [`stats`] — summary statistics and histograms for workload
//!   characterization (per-thread visit counts, degree distributions).
//! * [`table`] — plain-text table rendering for experiment outputs that
//!   mirror the paper's tables.
//! * [`idmap`] — dense re-mapping of sparse ID spaces ("ID squeezing",
//!   Stage 4 of the paper's framework).
//! * [`parallel`] — structured parallelism on scoped threads (the
//!   workspace's zero-dependency replacement for rayon).
//! * [`telemetry`] — lock-free latency histograms and RAII pipeline
//!   spans (the server's observability layer).
//! * [`sync`] — the sync seam: re-exports `std::sync` primitives
//!   normally, or the `hyperline-sched` model-checker shims under
//!   `--cfg hyperline_sched`.
//! * [`cancel`] — request-lifecycle cancellation: deadline watchdog,
//!   interest-counted cancel tokens, and the ambient per-thread token
//!   kernel chunk loops poll (flag-only, so kernels stay clock-free).
//! * [`failpoint`] — deterministic fault injection at I/O seams,
//!   compiled to no-ops in release builds (the chaos-test harness).

#![warn(missing_docs)]

pub mod bitset;
pub mod cancel;
pub mod csv;
pub mod failpoint;
pub mod fxhash;
pub mod idmap;
pub mod parallel;
pub mod stats;
pub mod sync;
pub mod table;
pub mod telemetry;
pub mod timer;

pub use bitset::BitSet;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use idmap::IdSqueezer;
pub use stats::Summary;
pub use table::Table;
pub use timer::Timer;
