//! Figure 8: strong scaling of Algorithm 2, s = 8.
//!
//! Fixes the input and doubles the worker count (1, 2, 4, 8, 16, max)
//! for the four Figure-8 strategy series (2BN, 2CN, 2BA, 2CA) on the
//! LiveJournal, com-Orkut, DNS-256 and Web profiles. Prints runtimes per
//! thread count; expect improvement up to about 16 threads and the
//! cyclic+ascending variant to scale best on the skewed inputs.
//!
//! `cargo run -p hyperline-bench --release --bin fig8_strong_scaling`
//! Options: `--s=8 --seed=42 --dns-chunks=256 --profiles=LiveJournal,...`

use hyperline_bench::{arg, print_header, with_pool};
use hyperline_gen::{dns_chunks, Profile};
use hyperline_hypergraph::{Hypergraph, RelabelOrder};
use hyperline_slinegraph::{run_pipeline, Algorithm, Partition, PipelineConfig, Strategy};
use hyperline_util::table::Table;
use hyperline_util::Timer;

fn main() {
    print_header("Figure 8: strong scaling of Algorithm 2, s = 8");
    let s: u32 = arg("s", 8);
    let seed: u64 = arg("seed", 42);
    let chunks: usize = arg("dns-chunks", 256);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 24, 32]
        .into_iter()
        .filter(|&t| t <= max_threads.max(1))
        .collect();

    let series: [(&str, Partition, RelabelOrder); 4] = [
        ("2BN", Partition::Blocked, RelabelOrder::None),
        ("2CN", Partition::Cyclic, RelabelOrder::None),
        ("2BA", Partition::Blocked, RelabelOrder::Ascending),
        ("2CA", Partition::Cyclic, RelabelOrder::Ascending),
    ];

    let profile_list: String = arg("profiles", "LiveJournal,com-Orkut,DNS,Web".to_string());
    let datasets: Vec<(String, Hypergraph)> = profile_list
        .split(',')
        .map(|name| {
            let name = name.trim();
            if name.eq_ignore_ascii_case("dns") {
                (format!("DNS-{chunks}"), dns_chunks(chunks, seed))
            } else {
                let p =
                    Profile::from_name(name).unwrap_or_else(|| panic!("unknown profile {name}"));
                (p.name().to_string(), p.generate(seed))
            }
        })
        .collect();

    for (name, h) in &datasets {
        println!(
            "\n--- {name}: {} vertices, {} edges ---",
            h.num_vertices(),
            h.num_edges()
        );
        let mut table = Table::new(
            std::iter::once("threads".to_string())
                .chain(series.iter().map(|(l, _, _)| l.to_string())),
        );
        for &threads in &thread_counts {
            let mut cells = vec![threads.to_string()];
            for &(_, partition, relabel) in &series {
                let secs = with_pool(threads, || {
                    let strategy = Strategy::default()
                        .with_partition(partition)
                        .with_relabel(relabel)
                        .with_workers(threads);
                    let config = PipelineConfig {
                        s,
                        algorithm: Algorithm::Algo2,
                        strategy,
                        compute_toplexes: false,
                        squeeze: false,
                        run_components: false,
                    };
                    let t = Timer::start();
                    let run = run_pipeline(h, &config);
                    std::hint::black_box(run.line_graph.num_edges());
                    t.seconds()
                });
                cells.push(format!("{secs:.3}s"));
            }
            table.row(cells);
        }
        table.print();
    }
    println!("\n(runtime per thread count; improvement should flatten past ~16 threads)");
}
