#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, release build, full test suite, and
# the two smoke benchmarks — server (cold vs warm cache latencies +
# streamed edge-list wire bytes, identity vs gzip, both encoder efforts)
# and kernels (cold pipeline stage timings with the counting-vs-tail
# breakdown, warn-only compared against the previous BENCH_kernels.json).
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> server smoke benchmark (cold vs warm -> BENCH_server.json)"
cargo run --release -q -p hyperline-bench --bin server_smoke

echo "==> kernel smoke benchmark (counting vs tail -> BENCH_kernels.json)"
cargo run --release -q -p hyperline-bench --bin kernel_smoke

echo "All checks passed."
