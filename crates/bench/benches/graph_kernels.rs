//! Criterion: Stage-5 s-metric kernels on a squeezed s-line graph.
//!
//! Connected components (three algorithms), betweenness (sequential vs
//! parallel), PageRank and algebraic connectivity, all on the same s-line
//! graph — the relative costs that determine which metric dominates a
//! Stage-5 budget.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperline_gen::Profile;
use hyperline_graph::{betweenness, cc, pagerank, spectral};
use hyperline_slinegraph::{algo2_slinegraph, SLineGraph, Strategy};
use std::hint::black_box;

fn graph_kernels(c: &mut Criterion) {
    let h = Profile::CondMat.generate(6);
    let r = algo2_slinegraph(&h, 2, &Strategy::default());
    let slg = SLineGraph::new_squeezed(2, h.num_edges(), r.edges);
    let g = slg.graph();
    let edges: Vec<(u32, u32)> = g.iter_edges().collect();

    let mut group = c.benchmark_group("graph_kernels");
    group.sample_size(10);
    group.bench_function("cc_bfs", |b| {
        b.iter(|| black_box(cc::components_bfs(g).len()))
    });
    group.bench_function("cc_label_prop", |b| {
        b.iter(|| black_box(cc::components_label_prop(g).len()))
    });
    group.bench_function("cc_union_find", |b| {
        b.iter(|| black_box(cc::components_union_find(g.num_vertices(), &edges).len()))
    });
    group.bench_function("betweenness_seq", |b| {
        b.iter(|| black_box(betweenness::betweenness(g).len()))
    });
    group.bench_function("betweenness_par", |b| {
        b.iter(|| black_box(betweenness::betweenness_parallel(g).len()))
    });
    group.bench_function("pagerank", |b| {
        b.iter(|| black_box(pagerank::pagerank(g, pagerank::PageRankOptions::default()).len()))
    });
    group.bench_function("algebraic_connectivity", |b| {
        b.iter(|| {
            black_box(spectral::normalized_algebraic_connectivity(
                g,
                spectral::SpectralOptions::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, graph_kernels);
criterion_main!(benches);
