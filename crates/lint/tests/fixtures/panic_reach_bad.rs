// Fixture: an unwrap two call hops below the request root. HL007 must
// report it with the full chain `handle_request->stage_one->stage_two`.
use crate::sync::Mutex;

pub struct State {
    pub value: Option<u32>,
}

// lint: request-root
fn handle_request(s: &State) -> u32 {
    stage_one(s)
}

fn stage_one(s: &State) -> u32 {
    stage_two(s)
}

fn stage_two(s: &State) -> u32 {
    s.value.unwrap()
}
