//! Seeded-random stress variants of the model-checked server units
//! (`tests/sched_models.rs`), runnable under plain `cargo test` with
//! real threads: single-flight cache fencing and dedup, gauge-guard
//! accounting, worker-pool panic recovery and shutdown.

use hyperline_server::cache::{AlgoKind, CacheKey, SingleFlightCache};
use hyperline_server::metrics::GaugeGuard;
use hyperline_server::pool::WorkerPool;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn jitter(rng: &mut u64) {
    for _ in 0..(splitmix(rng) % 4) {
        std::thread::yield_now();
    }
}

fn key(dataset: &str, s: u32) -> CacheKey {
    CacheKey {
        dataset: dataset.to_string(),
        s,
        algorithm: AlgoKind::Algo2,
        weighted: false,
    }
}

#[test]
fn stress_insert_if_current_never_leaks_stale_artifacts() {
    let mut seed = 0x5afe_u64;
    for round in 0..80 {
        let cache = Arc::new(SingleFlightCache::<CacheKey, u64>::new(1 << 20));
        let k = key("d", 1);
        let gen0 = cache.generation("d");
        let (s1, s2) = (splitmix(&mut seed), splitmix(&mut seed));
        std::thread::scope(|scope| {
            let (c, k2) = (cache.clone(), k.clone());
            let mut r = s1;
            scope.spawn(move || {
                jitter(&mut r);
                c.insert_if_current(k2, gen0, 42, 8);
            });
            let c = cache.clone();
            let mut r = s2;
            scope.spawn(move || {
                jitter(&mut r);
                c.invalidate_dataset("d");
            });
        });
        assert!(
            cache.lookup(&k).is_none(),
            "round {round}: stale artifact survived a dataset replacement"
        );
        assert_ne!(
            cache.generation("d"),
            gen0,
            "round {round}: generation not bumped"
        );
    }
}

#[test]
fn stress_single_flight_runs_each_computation_once() {
    let mut seed = 0xf117_u64;
    for round in 0..40 {
        let cache = Arc::new(SingleFlightCache::<CacheKey, u64>::new(1 << 20));
        let computes = Arc::new(AtomicU64::new(0));
        let callers = 2 + (round % 3);
        std::thread::scope(|scope| {
            for _ in 0..callers {
                let (c, n) = (cache.clone(), computes.clone());
                let mut r = splitmix(&mut seed);
                scope.spawn(move || {
                    jitter(&mut r);
                    let (value, _outcome) = c
                        .get_or_compute(&key("d", round as u32), || {
                            n.fetch_add(1, Ordering::Relaxed);
                            Ok((7u64, 8))
                        })
                        .expect("compute never fails here");
                    assert_eq!(*value, 7, "caller saw a value other than the computed one");
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::Relaxed),
            1,
            "round {round}: single-flight ran the computation more than once"
        );
    }
}

#[test]
fn stress_gauge_guard_balances_under_contention() {
    let mut seed = 0x6a06_u64;
    for round in 0..60 {
        let gauge = Arc::new(AtomicI64::new(0));
        let threads = 2 + (round % 3);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let g = gauge.clone();
                let mut r = splitmix(&mut seed);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let _guard = GaugeGuard::enter(&g);
                        let seen = g.load(Ordering::Relaxed);
                        assert!(seen >= 1, "gauge observed {seen} inside a live guard");
                        jitter(&mut r);
                    }
                });
            }
        });
        assert_eq!(
            gauge.load(Ordering::Relaxed),
            0,
            "round {round}: gauge did not return to zero after all guards dropped"
        );
    }
}

#[test]
fn stress_worker_pool_survives_panicking_jobs() {
    let mut seed = 0x900d_u64;
    for round in 0..25 {
        let done = Arc::new(AtomicU64::new(0));
        let d2 = done.clone();
        let pool = WorkerPool::start(2, 8, move |job: u32| {
            if job % 5 == 0 {
                panic!("poisoned job");
            }
            d2.fetch_add(1, Ordering::Relaxed);
        });
        let mut pushed_ok = 0u64;
        for i in 0..24u32 {
            jitter(&mut seed);
            // The queue may be momentarily full; retry until accepted.
            let mut job = i;
            loop {
                match pool.queue().try_push(job) {
                    Ok(()) => break,
                    Err(j) => {
                        job = j;
                        std::thread::yield_now();
                    }
                }
            }
            if i % 5 != 0 {
                pushed_ok += 1;
            }
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::Relaxed),
            pushed_ok,
            "round {round}: worker lost jobs after recovering from panics"
        );
    }
}
