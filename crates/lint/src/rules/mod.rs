//! Interprocedural rules over the workspace call graph.
//!
//! * [`panics`] — HL007 call-graph panic reachability from annotated
//!   request roots.
//! * [`locks`] — HL008 static lock-order cycle detection.
//! * [`atomics`] — HL009 release/acquire pairing on atomic fields.

pub mod atomics;
pub mod locks;
pub mod panics;
