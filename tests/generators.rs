//! Structural validation of every synthetic dataset profile: the
//! generators must produce internally-consistent hypergraphs with the
//! skew properties the experiments rely on.

use hyperline::gen::{dns_chunks, Profile};
use hyperline::hypergraph::checks;

#[test]
fn every_profile_is_structurally_valid() {
    for profile in Profile::ALL {
        let h = profile.generate(1);
        checks::assert_valid(&h);
        assert!(h.num_edges() > 0, "{}: no edges", profile.name());
        assert!(h.num_vertices() > 0, "{}: no vertices", profile.name());
    }
}

#[test]
fn dns_chunk_family_is_valid_and_linear() {
    let mut prev_incidences = 0usize;
    for chunks in [1usize, 2, 4] {
        let h = dns_chunks(chunks, 7);
        checks::assert_valid(&h);
        assert_eq!(h.num_edges(), 4_000 * chunks);
        assert!(h.num_incidences() > prev_incidences);
        prev_incidences = h.num_incidences();
    }
    // Linear growth: 4 chunks ≈ 4 × 1 chunk (±20%, dedup jitter).
    let one = dns_chunks(1, 7).num_incidences() as f64;
    let four = dns_chunks(4, 7).num_incidences() as f64;
    assert!((four / one - 4.0).abs() < 0.8, "ratio {}", four / one);
}

#[test]
fn social_profiles_are_skewed() {
    // Table IV: "all the hypergraphs have a skewed hyperedge degree
    // distribution" — the load-balancing experiments depend on it.
    for profile in [
        Profile::LiveJournal,
        Profile::ComOrkut,
        Profile::Friendster,
        Profile::Web,
        Profile::AmazonReviews,
    ] {
        let h = profile.generate(1);
        let skew = checks::edge_size_skew(&h);
        assert!(
            skew > 3.0,
            "{}: edge-size skew {skew:.1} too uniform",
            profile.name()
        );
    }
}

#[test]
fn profiles_differ_across_seeds_but_not_within() {
    for profile in [Profile::LesMis, Profile::Genomics, Profile::CondMat] {
        assert_eq!(
            profile.generate(5),
            profile.generate(5),
            "{}",
            profile.name()
        );
        assert_ne!(
            profile.generate(5),
            profile.generate(6),
            "{}",
            profile.name()
        );
    }
}

#[test]
fn degree_histograms_have_tails() {
    let h = Profile::LiveJournal.generate(1);
    let (vertex_hist, edge_hist) = checks::degree_histograms(&h);
    // Skewed distributions spread over many log-bins.
    assert!(vertex_hist.len() >= 6, "vertex bins: {}", vertex_hist.len());
    assert!(edge_hist.len() >= 6, "edge bins: {}", edge_hist.len());
    // The head dominates the tail.
    assert!(vertex_hist[0] + vertex_hist[1] > *vertex_hist.last().unwrap() * 10);
}

#[test]
fn planted_ranges_are_in_bounds() {
    for profile in Profile::ALL {
        if let Some(range) = profile.planted_edge_range(1) {
            let h = profile.generate(1);
            assert!(
                (range.end as usize) <= h.num_edges(),
                "{}: planted range {range:?} exceeds {} edges",
                profile.name(),
                h.num_edges()
            );
            assert!(!range.is_empty(), "{}: empty planted range", profile.name());
        }
    }
}
