//! A minimal JSON value builder, streaming serializer and parser.
//!
//! The wire protocol *emits* JSON everywhere and *reads* it in exactly
//! one place: the body of `POST /query`, a batch of sub-queries. [`Json`]
//! covers the value shapes the endpoints build, with `From` impls keeping
//! handler code terse; [`Json::parse`] is a strict recursive-descent
//! RFC 8259 parser sized for request bodies (depth-limited, no trailing
//! garbage).
//!
//! Serialization goes through [`Json::write_into`], which renders the
//! tree directly into any [`Write`] — a `Vec<u8>` for the buffered
//! fast path ([`Json::render`]), or the server's chunked/gzip writer
//! stack for streamed responses. The [`Json::Stream`] variant holds a
//! [`StreamFragment`] that renders lazily at write time, so a response
//! carrying a cached million-edge list never materializes a body-sized
//! `String`: the tree holds an `Arc` to the artifact and the edges are
//! formatted straight into the socket.

use std::io::{self, Write};
use std::sync::Arc;

/// A JSON fragment rendered lazily, straight into the response writer.
///
/// Implementors hold `Arc`s to cached data (an artifact's edge list, a
/// metric result) and write one complete JSON value — rendering must be
/// deterministic, since repeated identical requests are byte-compared.
pub trait StreamFragment: Send + Sync {
    /// Writes the fragment's complete JSON form (one valid JSON value).
    fn write_json(&self, out: &mut dyn Write) -> io::Result<()>;
}

/// A JSON value under construction.
#[derive(Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer (emitted without a decimal point).
    Int(i128),
    /// A float; non-finite values serialize as `null` per RFC 8259.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// A lazily-rendered fragment (large arrays streamed from cached
    /// `Arc` data). Never produced by [`Json::parse`].
    Stream(Arc<dyn StreamFragment>),
    /// A preformatted non-JSON body rendered verbatim, carrying its own
    /// `content-type` (Prometheus text exposition). Never produced by
    /// [`Json::parse`].
    Text {
        /// The `content-type` header value to declare.
        content_type: &'static str,
        /// The raw body text.
        body: String,
    },
}

impl std::fmt::Debug for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => write!(f, "Null"),
            Json::Bool(b) => f.debug_tuple("Bool").field(b).finish(),
            Json::Int(i) => f.debug_tuple("Int").field(i).finish(),
            Json::Float(x) => f.debug_tuple("Float").field(x).finish(),
            Json::Str(s) => f.debug_tuple("Str").field(s).finish(),
            Json::Arr(items) => f.debug_tuple("Arr").field(items).finish(),
            Json::Obj(fields) => f.debug_tuple("Obj").field(fields).finish(),
            Json::Stream(_) => write!(f, "Stream(..)"),
            Json::Text { content_type, .. } => f.debug_tuple("Text").field(content_type).finish(),
        }
    }
}

impl PartialEq for Json {
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Float(a), Json::Float(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            // Fragments compare by identity — equality of rendered
            // output would defeat the point of not rendering.
            (Json::Stream(a), Json::Stream(b)) => Arc::ptr_eq(a, b),
            (
                Json::Text {
                    content_type: ta,
                    body: ba,
                },
                Json::Text {
                    content_type: tb,
                    body: bb,
                },
            ) => ta == tb && ba == bb,
            _ => false,
        }
    }
}

impl Json {
    /// An empty object to extend with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds/chains a field on an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("set() on non-object {other:?}"),
        }
        self
    }

    /// Parses JSON text into a [`Json`] value. Strict: rejects trailing
    /// characters, unterminated values, invalid escapes and nesting
    /// deeper than 64 levels (the batch endpoint only needs an array of
    /// flat objects). Error messages are client-facing.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!(
                "trailing characters after JSON value at byte {}",
                parser.pos
            ));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The first value of object field `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether this tree contains a [`Json::Stream`] fragment — the
    /// server's signal to use the chunked streaming response path
    /// instead of rendering a fixed-length body.
    pub fn is_streaming(&self) -> bool {
        match self {
            Json::Stream(_) => true,
            Json::Arr(items) => items.iter().any(Json::is_streaming),
            Json::Obj(fields) => fields.iter().any(|(_, v)| v.is_streaming()),
            _ => false,
        }
    }

    /// Serializes to compact JSON text (buffered; fragments render too).
    pub fn render(&self) -> String {
        let mut out = Vec::new();
        self.write_into(&mut out).expect("Vec write cannot fail");
        String::from_utf8(out).expect("rendered JSON is UTF-8")
    }

    /// Streams compact JSON text into `out`. This is *the* serializer:
    /// [`Json::render`] wraps it over a `Vec<u8>`, and streamed
    /// responses hand it the chunked/gzip writer stack so rendering
    /// never buffers more than the writers' fixed-size frames.
    pub fn write_into(&self, out: &mut dyn Write) -> io::Result<()> {
        match self {
            Json::Null => out.write_all(b"null"),
            Json::Bool(b) => out.write_all(if *b { b"true" } else { b"false" }),
            Json::Int(i) => write!(out, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(out, "{x}")
                } else {
                    out.write_all(b"null")
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.write_all(b"[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b",")?;
                    }
                    item.write_into(out)?;
                }
                out.write_all(b"]")
            }
            Json::Obj(fields) => {
                out.write_all(b"{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b",")?;
                    }
                    escape_into(k, out)?;
                    out.write_all(b":")?;
                    v.write_into(out)?;
                }
                out.write_all(b"}")
            }
            Json::Stream(fragment) => fragment.write_json(out),
            Json::Text { body, .. } => out.write_all(body.as_bytes()),
        }
    }
}

fn escape_into(s: &str, out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"\"")?;
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        // Multi-byte UTF-8 units are >= 0x80 and pass through in runs.
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            b if b < 0x20 => {
                out.write_all(&bytes[start..i])?;
                write!(out, "\\u{b:04x}")?;
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.write_all(&bytes[start..i])?;
        out.write_all(escape)?;
        start = i + 1;
    }
    out.write_all(&bytes[start..])?;
    out.write_all(b"\"")
}

/// Maximum nesting depth [`Json::parse`] accepts (guards the recursion
/// against adversarial `[[[[…]]]]` bodies).
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes `literal` or errors.
    fn expect_lit(&mut self, literal: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(format!("expected {literal:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err("JSON nested deeper than 64 levels".to_string());
        }
        match self.peek() {
            Some(b'n') => self.expect_lit("null").map(|()| Json::Null),
            Some(b't') => self.expect_lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.expect_lit("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:?} at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of JSON".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect_lit(":")?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 bytes in JSON string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the paired \uXXXX.
                                self.expect_lit("\\u")
                                    .map_err(|_| "unpaired surrogate".to_string())?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| "invalid \\u escape".to_string())?);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => return Err("unescaped control byte in string".to_string()),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        // Require four hex *digits*: from_str_radix alone would also
        // accept sign-prefixed forms like "\u+123".
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        // FromStr alone is laxer than the RFC 8259 grammar (it accepts
        // "01" and "1."), so validate the token shape first.
        if !valid_number_token(text.as_bytes()) {
            return Err(format!("invalid number {text:?}"));
        }
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number {text:?}"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("invalid number {text:?}"))
        }
    }
}

/// Whether `token` matches RFC 8259's number grammar:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn valid_number_token(token: &[u8]) -> bool {
    let mut i = 0;
    if token.get(i) == Some(&b'-') {
        i += 1;
    }
    match token.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(token.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if token.get(i) == Some(&b'.') {
        i += 1;
        if !matches!(token.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(token.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(token.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(token.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(token.get(i), Some(b'0'..=b'9')) {
            return false;
        }
        while matches!(token.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    i == token.len()
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(42u32).render(), "42");
        assert_eq!(Json::from(-7i64).render(), "-7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::from("héllo").render(), "\"héllo\"");
    }

    #[test]
    fn nested_structure() {
        let v = Json::obj()
            .set("name", "x")
            .set(
                "counts",
                Json::Arr(vec![Json::from(1u32), Json::from(2u32)]),
            )
            .set("nested", Json::obj().set("ok", true));
        assert_eq!(
            v.render(),
            r#"{"name":"x","counts":[1,2],"nested":{"ok":true}}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Arr(vec![]).set("k", 1u32);
    }

    struct Edges(Vec<(u32, u32)>);

    impl StreamFragment for Edges {
        fn write_json(&self, out: &mut dyn Write) -> io::Result<()> {
            out.write_all(b"[")?;
            for (n, &(i, j)) in self.0.iter().enumerate() {
                if n > 0 {
                    out.write_all(b",")?;
                }
                write!(out, "[{i},{j}]")?;
            }
            out.write_all(b"]")
        }
    }

    #[test]
    fn stream_fragments_render_lazily_and_mark_the_tree() {
        let fragment: Arc<dyn StreamFragment> = Arc::new(Edges(vec![(0, 1), (0, 2)]));
        let body = Json::obj()
            .set("n", 2u32)
            .set("edges", Json::Stream(Arc::clone(&fragment)));
        assert!(body.is_streaming());
        assert!(!Json::obj().set("n", 2u32).is_streaming());
        assert_eq!(body.render(), r#"{"n":2,"edges":[[0,1],[0,2]]}"#);
        // write_into and render agree byte for byte.
        let mut streamed = Vec::new();
        body.write_into(&mut streamed).unwrap();
        assert_eq!(streamed, body.render().into_bytes());
        // Fragments compare by identity, not content.
        assert_eq!(
            Json::Stream(Arc::clone(&fragment)),
            Json::Stream(Arc::clone(&fragment))
        );
        assert_ne!(
            Json::Stream(fragment),
            Json::Stream(Arc::new(Edges(vec![(0, 1), (0, 2)])))
        );
    }

    #[test]
    fn write_into_matches_render_for_all_shapes() {
        let v = Json::obj()
            .set("s", "a\"b\\c\nd\u{1}é")
            .set(
                "xs",
                Json::Arr(vec![Json::Null, Json::from(1.5), Json::from(-7i64)]),
            )
            .set("nested", Json::obj().set("ok", true));
        let mut streamed = Vec::new();
        v.write_into(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), v.render());
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("-0.5e-1").unwrap(), Json::Float(-0.05));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::from("hi"));
        assert_eq!(Json::parse(" 1 ").unwrap(), Json::Int(1));
    }

    #[test]
    fn parse_structures_and_accessors() {
        let v = Json::parse(r#"[{"dataset":"d","op":"slg","s":2,"weighted":true}, 5]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("dataset").and_then(Json::as_str), Some("d"));
        assert_eq!(items[0].get("s").and_then(Json::as_int), Some(2));
        assert_eq!(items[0].get("weighted").and_then(Json::as_bool), Some(true));
        assert_eq!(items[0].get("missing"), None);
        assert_eq!(items[1].as_int(), Some(5));
        assert_eq!(items[1].as_str(), None);
        assert_eq!(items[0].entries().unwrap().len(), 4);
    }

    #[test]
    fn parse_render_roundtrip() {
        for text in [
            r#"{"a":[1,2.5,null,true],"b":{"c":"x\ny"},"d":[]}"#,
            r#"[{"k":"héllo"},-3]"#,
            "{}",
            "[]",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::from("a\"b\\c\ndAé")
        );
        // Surrogate pair escape for 𝄞 (U+1D11E), and the literal form.
        assert_eq!(
            Json::parse(r#""\ud834\udd1e""#).unwrap(),
            Json::from("\u{1D11E}")
        );
        assert_eq!(Json::parse("\"𝄞\"").unwrap(), Json::from("\u{1D11E}"));
        assert!(Json::parse(r#""\ud834""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\x""#).is_err(), "unknown escape");
        assert!(Json::parse(r#""\u+123""#).is_err(), "sign-prefixed hex");
        assert!(Json::parse(r#""\u12""#).is_err(), "truncated hex");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "1 2",
            "nul",
            "\"unterminated",
            "01a",
            "--3",
            // RFC 8259 number grammar: no leading zeros, no bare dots
            // or exponents, no interior signs.
            "01",
            "-01",
            "1.",
            "1.e3",
            "1e",
            "1e+",
            "2-3",
            "1+2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
        // Depth bomb is rejected, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok_depth = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok_depth).is_ok());
    }
}
