//! Structured parallelism on `std::thread::scope` — the workspace's
//! replacement for rayon.
//!
//! The paper's algorithms only ever need one shape of parallelism: "run N
//! workers over a range and merge their results". Scoped threads cover
//! that without a work-stealing runtime or any external dependency:
//!
//! * [`scope_workers`] — exactly N workers, one call each (the primitive
//!   everything else builds on; [`crate::parallel`] callers with
//!   per-worker state use it directly);
//! * [`par_map_range`] / [`par_map_range_init`] — ordered map over
//!   `0..n`, dynamically load-balanced in chunks;
//! * [`par_map_slice`] — ordered map over a slice;
//! * [`par_for_each_range`] — side-effect loop over `0..n` (the body
//!   synchronizes through atomics/locks as needed);
//! * [`par_for_each_mut`] / [`par_for_each_indexed_mut`] — in-place loop
//!   over disjoint `&mut` elements.
//!
//! The worker count defaults to [`std::thread::available_parallelism`]
//! and can be pinned per-call-site with [`with_threads`] (a thread-local
//! override, which is how the scaling benchmarks sweep 1..cores).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The worker count parallel operations on this thread will use:
/// the innermost [`with_threads`] override, else the machine's available
/// parallelism (at least 1).
pub fn num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over > 0 {
        over
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `f` with [`num_threads`] pinned to `n` on the current thread
/// (parallel operations started inside `f` use `n` workers). Nested
/// overrides stack; the previous value is restored on exit (also on
/// panic).
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Spawns exactly `num_workers` scoped workers running `work(worker_id)`
/// and returns their results indexed by worker ID. Worker 0 runs on the
/// calling thread.
///
/// # Panics
/// Propagates the first worker panic.
pub fn scope_workers<T: Send>(num_workers: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let num_workers = num_workers.max(1);
    if num_workers == 1 {
        return vec![work(0)];
    }
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..num_workers)
            .map(|w| scope.spawn(move || work(w)))
            .collect();
        let mut results = Vec::with_capacity(num_workers);
        results.push(work(0));
        for handle in handles {
            results.push(match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            });
        }
        results
    })
}

/// Chunk size giving each worker ~8 grabs: dynamic enough to balance
/// skewed items, coarse enough to keep the cursor cold.
fn default_chunk(n: usize, workers: usize) -> usize {
    (n / (workers * 8)).max(1)
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
/// Work is claimed dynamically in chunks from an atomic cursor.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    par_map_range_init(n, || (), |(), i| f(i))
}

/// Like [`par_map_range`] with per-worker scratch state: `init()` runs
/// once per worker and `f(&mut state, i)` maps index `i`. Results come
/// back in index order (rayon's `map_init` shape).
pub fn par_map_range_init<S, U: Send>(
    n: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> U + Sync,
) -> Vec<U> {
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    let chunk = default_chunk(n, workers);
    let cursor = AtomicUsize::new(0);
    // Each worker returns contiguous (start, results) runs; stitching them
    // back in start order restores the index order without shared writes.
    let mut runs: Vec<(usize, Vec<U>)> = scope_workers(workers, |_| {
        let mut state = init();
        let mut out: Vec<(usize, Vec<U>)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            out.push((start, (start..end).map(|i| f(&mut state, i)).collect()));
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    runs.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(n);
    for (_, mut run) in runs {
        result.append(&mut run);
    }
    debug_assert_eq!(result.len(), n);
    result
}

/// Maps `f` over a slice in parallel, returning results in input order.
pub fn par_map_slice<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Runs `f(i)` for every `i` in `0..n` in parallel (unordered;
/// side-effecting bodies synchronize through atomics or locks).
pub fn par_for_each_range(n: usize, f: impl Fn(usize) + Sync) {
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        (0..n).for_each(f);
        return;
    }
    let chunk = default_chunk(n, workers);
    let cursor = AtomicUsize::new(0);
    scope_workers(workers, |_| loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            return;
        }
        for i in start..(start + chunk).min(n) {
            f(i);
        }
    });
}

/// Runs `f` on every element of `items` in parallel (disjoint `&mut`
/// access, distributed in contiguous chunks).
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    par_for_each_indexed_mut(items, |_, item| f(item));
}

/// Like [`par_for_each_mut`], also passing each element's index.
pub fn par_for_each_indexed_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = items.len();
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, block) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (k, item) in block.iter_mut().enumerate() {
                    f(c * chunk + k, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_range_preserves_order() {
        let out = par_map_range(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
        assert!(par_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        // State is a counter: the sum over all workers must equal n.
        let counts = par_map_range_init(
            500,
            || 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        assert_eq!(counts.len(), 500);
    }

    #[test]
    fn map_slice_matches_serial() {
        let items: Vec<u32> = (0..777).collect();
        assert_eq!(
            par_map_slice(&items, |&x| x + 1),
            items.iter().map(|&x| x + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn for_each_range_visits_all_once() {
        let n = 1013;
        let sum = AtomicU64::new(0);
        par_for_each_range(n, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (n as u64 * (n as u64 - 1)) / 2);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let mut v: Vec<usize> = vec![0; 503];
        par_for_each_indexed_mut(&mut v, |i, slot| *slot = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
        par_for_each_mut(&mut v, |x| *x *= 2);
        assert_eq!(v[10], 22);
    }

    #[test]
    fn scope_workers_ids_and_results() {
        let out = scope_workers(6, |w| w * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(scope_workers(0, |w| w), vec![0], "clamps to one worker");
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = num_threads();
        let inside = with_threads(3, num_threads);
        assert_eq!(inside, 3);
        assert_eq!(num_threads(), outside);
        // Nested overrides stack.
        with_threads(2, || {
            assert_eq!(num_threads(), 2);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 2);
        });
        // Zero clamps to one.
        assert_eq!(with_threads(0, num_threads), 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            scope_workers(4, |w| {
                if w == 3 {
                    panic!("boom");
                }
                w
            })
        });
        assert!(result.is_err());
    }
}
