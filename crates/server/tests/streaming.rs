//! Wire-level tests for the streaming response stack: chunked framing,
//! gzip negotiation (decode + byte-compare against the buffered
//! rendering), HEAD semantics, `Expect: 100-continue`, and the
//! oversized-body desync regression.

use hyperline_server::{gzip, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server(profile: &str) -> (hyperline_server::ServerHandle, String) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_mb: 64,
        queue_depth: 64,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let name = server
        .registry()
        .load_profile(profile, 42, None)
        .expect("load profile");
    (server.spawn(), name)
}

/// One request with caller-controlled headers; returns the raw response
/// bytes (status line through EOF).
fn exchange(addr: SocketAddr, request: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    raw
}

/// Splits a raw response into `(head, body bytes)`.
fn split_response(wire: &[u8]) -> (String, Vec<u8>) {
    let boundary = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head/body boundary in {wire:?}"));
    (
        String::from_utf8(wire[..boundary].to_vec()).unwrap(),
        wire[boundary + 4..].to_vec(),
    )
}

/// Reassembles a chunked body (shared strict helper, unwrapped).
fn dechunk(body: &[u8]) -> Vec<u8> {
    hyperline_server::http::dechunk(body).expect("well-formed chunked body")
}

/// Acceptance: a full (un-`limit`ed) genomics edge list streams chunked,
/// the gzip body de-chunks + decodes byte-identical to the identity
/// rendering, and gzip shrinks the edge list at least 3x on the wire.
#[test]
fn full_edge_list_streams_chunked_and_gzips_three_times_smaller() {
    let (handle, name) = start_server("genomics");
    let addr = handle.addr();
    let target = format!("/datasets/{name}/slg?s=2&limit=100000000");

    // Warm the artifact so both measured responses carry `cache: hit`
    // and compare byte-identical.
    exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    );
    let identity = exchange(
        addr,
        &format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    );
    let (head, raw_body) = split_response(&identity);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );
    assert!(
        !head.to_ascii_lowercase().contains("content-length"),
        "streamed responses must not claim a length: {head}"
    );
    let identity_body = dechunk(&raw_body);
    assert!(
        identity_body.len() > 1_000_000,
        "full genomics edge list should be >1 MB, got {}",
        identity_body.len()
    );

    let gzipped = exchange(
        addr,
        &format!(
            "GET {target} HTTP/1.1\r\nhost: t\r\naccept-encoding: gzip\r\nconnection: close\r\n\r\n"
        ),
    );
    let (head, raw_body) = split_response(&gzipped);
    assert!(
        head.to_ascii_lowercase().contains("content-encoding: gzip"),
        "{head}"
    );
    let gzip_body = dechunk(&raw_body);
    let decoded = gzip::decode(&gzip_body).expect("valid gzip stream");
    assert_eq!(
        decoded, identity_body,
        "gzip body must round-trip byte-identical to the identity rendering"
    );
    assert!(
        gzip_body.len() * 3 <= identity_body.len(),
        "acceptance: >=3x wire reduction on edge lists, got {} -> {}",
        identity_body.len(),
        gzip_body.len()
    );
    handle.shutdown();
}

#[test]
fn chunked_responses_keep_the_connection_reusable() {
    let (handle, name) = start_server("lesMis");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Three streamed requests on one keep-alive connection; each body
    // must de-chunk cleanly and identically (warm repeats).
    let mut bodies = Vec::new();
    for i in 0..3 {
        write!(
            stream,
            "GET /datasets/{name}/sweep?max_s=4 HTTP/1.1\r\nhost: t\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        // Read until the terminal chunk marker.
        while !raw.ends_with(b"0\r\n\r\n") {
            stream
                .read_exact(&mut byte)
                .unwrap_or_else(|e| panic!("request {i}: connection died mid-response: {e}"));
            raw.push(byte[0]);
        }
        let (head, body) = split_response(&raw);
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        assert!(head.contains("connection: keep-alive"), "request {i}");
        bodies.push(dechunk(&body));
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);
    assert!(std::str::from_utf8(&bodies[0])
        .unwrap()
        .contains("\"counts\":"));
    handle.shutdown();
}

#[test]
fn head_matches_get_and_keeps_the_connection() {
    let (handle, name) = start_server("lesMis");
    let addr = handle.addr();

    // Warm the cache so GET and HEAD see identical (hit) bodies.
    let warm = |target: &str| {
        let raw = exchange(
            addr,
            &format!("GET {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
        );
        let (head, body) = split_response(&raw);
        if head
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
        {
            dechunk(&body)
        } else {
            body
        }
    };
    for target in [
        "/healthz".to_string(),
        format!("/datasets/{name}/slg?s=2&limit=50"),
        format!("/datasets/{name}/sweep?max_s=3"),
    ] {
        warm(&target);
        let get_body = warm(&target);
        let raw = exchange(
            addr,
            &format!("HEAD {target} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
        );
        let (head, body) = split_response(&raw);
        assert!(head.starts_with("HTTP/1.1 200"), "{target}: {head}");
        assert!(body.is_empty(), "{target}: HEAD must not send a body");
        assert!(
            head.contains(&format!("content-length: {}", get_body.len())),
            "{target}: expected length {} in {head}",
            get_body.len()
        );
    }

    // HEAD keeps the connection alive: a GET on the same socket works.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "HEAD /healthz HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).unwrap();
        raw.push(byte[0]);
    }
    assert!(raw.starts_with(b"HTTP/1.1 200"));
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        String::from_utf8_lossy(&rest).contains("\"ok\":true"),
        "connection must survive the HEAD exchange"
    );
    handle.shutdown();
}

/// Regression: an oversized `Content-Length` must be answered with 400
/// and a closed connection *without* reading the body — otherwise the
/// body bytes (here: a smuggled pipelined request) would be parsed as
/// the next request on the keep-alive loop.
#[test]
fn oversized_body_is_rejected_and_closed_without_desync() {
    let (handle, _) = start_server("lesMis");
    let oversized = 1024 * 1024 + 1;
    let smuggled = "GET /healthz HTTP/1.1\r\nhost: smuggled\r\n\r\n";
    let raw = exchange(
        handle.addr(),
        &format!(
            "POST /query HTTP/1.1\r\nhost: t\r\ncontent-length: {oversized}\r\n\r\n{smuggled}"
        ),
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    assert!(text.contains("connection: close"), "{text}");
    assert_eq!(
        text.matches("HTTP/1.1").count(),
        1,
        "exactly one response: the smuggled body bytes must never be answered: {text}"
    );
    handle.shutdown();
}

/// A conforming `Expect: 100-continue` client waits for the interim
/// response before sending its body; the server must emit it instead of
/// stalling the exchange until the read timeout.
#[test]
fn expect_100_continue_receives_interim_then_final_response() {
    let (handle, name) = start_server("lesMis");
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = format!(r#"[{{"dataset":"{name}","op":"stats"}}]"#);
    write!(
        stream,
        "POST /query HTTP/1.1\r\nhost: t\r\nexpect: 100-continue\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .unwrap();
    // Do NOT send the body yet: wait for the 100 like a real client.
    let mut interim = Vec::new();
    let mut byte = [0u8; 1];
    while !interim.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("interim response");
        interim.push(byte[0]);
    }
    assert!(
        interim.starts_with(b"HTTP/1.1 100 Continue"),
        "{}",
        String::from_utf8_lossy(&interim)
    );
    stream.write_all(body.as_bytes()).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    let text = String::from_utf8_lossy(&rest);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"hyperedges\":400"), "{text}");
    handle.shutdown();
}

#[test]
fn unsupported_codings_and_expectations_close_with_an_error() {
    let (handle, _) = start_server("lesMis");
    let addr = handle.addr();
    // Transfer-encoded request bodies: 501 + close (ignoring the header
    // would desync on the chunked body bytes).
    let raw = exchange(
        addr,
        "POST /query HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 501"), "{text}");
    assert!(text.contains("connection: close"), "{text}");
    assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");

    // Unknown expectation: 417 + close.
    let raw = exchange(
        addr,
        "POST /query HTTP/1.1\r\nhost: t\r\nexpect: teleport\r\ncontent-length: 2\r\n\r\nok",
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 417"), "{text}");

    // Conflicting Content-Length headers: 400 + close.
    let raw = exchange(
        addr,
        "POST /query HTTP/1.1\r\nhost: t\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\nokx",
    );
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    handle.shutdown();
}

/// HTTP/1.0 clients get identity close-delimited bodies (no chunked
/// framing, which 1.0 does not understand).
#[test]
fn http10_gets_close_delimited_identity_bodies() {
    let (handle, name) = start_server("lesMis");
    let raw = exchange(
        handle.addr(),
        &format!("GET /datasets/{name}/slg?s=2&limit=50 HTTP/1.0\r\nhost: t\r\n\r\n"),
    );
    let (head, body) = split_response(&raw);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        !head.to_ascii_lowercase().contains("transfer-encoding"),
        "{head}"
    );
    assert!(head.contains("connection: close"), "{head}");
    let text = std::str::from_utf8(&body).unwrap();
    assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
    assert!(text.contains("\"edges\":[["), "{text}");
    handle.shutdown();
}
