//! The artifact cache: LRU-evicted, memory-budgeted, single-flight.
//!
//! Computed s-line graphs are keyed by everything that determines their
//! content — `(dataset, s, algorithm, weighted)` — and held behind `Arc`
//! so eviction never invalidates an in-flight response. Two guarantees
//! matter under concurrency:
//!
//! * **LRU under a byte budget** — inserting past the budget evicts the
//!   least-recently-used entries first (the newest entry is kept even if
//!   it alone exceeds the budget, so oversized artifacts still serve).
//! * **Single-flight** — concurrent requests for the same missing key
//!   trigger exactly one computation; the rest block on a condvar and
//!   share the result (IIPImage's cache plays the same role for tiles).

use hyperline_util::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of one cached artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry name of the source dataset.
    pub dataset: String,
    /// The overlap threshold `s`.
    pub s: u32,
    /// Construction algorithm (distinct algorithms are distinct artifacts
    /// so comparative benchmarking never aliases).
    pub algorithm: AlgoKind,
    /// Whether overlap weights were materialized.
    pub weighted: bool,
}

/// The s-line-graph construction algorithms the server exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// The paper's hashmap-counting Algorithm 2 (default).
    Algo2,
    /// The HiPC'21 set-intersection Algorithm 1.
    Algo1,
    /// SpGEMM + filtration baseline (upper triangle).
    Spgemm,
    /// All-pairs naive baseline.
    Naive,
}

impl AlgoKind {
    /// Parses the `algo=` query value.
    pub fn from_name(name: &str) -> Option<AlgoKind> {
        match name {
            "algo2" | "2" => Some(AlgoKind::Algo2),
            "algo1" | "1" => Some(AlgoKind::Algo1),
            "spgemm" => Some(AlgoKind::Spgemm),
            "naive" => Some(AlgoKind::Naive),
            _ => None,
        }
    }

    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Algo2 => "algo2",
            AlgoKind::Algo1 => "algo1",
            AlgoKind::Spgemm => "spgemm",
            AlgoKind::Naive => "naive",
        }
    }
}

/// How a [`ArtifactCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Computed by this call.
    Miss,
    /// Another in-flight call computed it; this call waited and shared.
    Coalesced,
}

struct Entry<V> {
    value: Arc<V>,
    bytes: usize,
    last_used: u64,
}

struct Inflight<V> {
    slot: Mutex<Option<Result<Arc<V>, String>>>,
    ready: Condvar,
}

struct Inner<V> {
    map: FxHashMap<CacheKey, Entry<V>>,
    inflight: FxHashMap<CacheKey, Arc<Inflight<V>>>,
    /// Per-dataset invalidation generation: a computation started under
    /// an older generation must not enter the map (its input was
    /// replaced mid-flight).
    generations: FxHashMap<String, u64>,
    used_bytes: usize,
    clock: u64,
}

impl<V> Inner<V> {
    fn generation(&self, dataset: &str) -> u64 {
        self.generations.get(dataset).copied().unwrap_or(0)
    }
}

/// Point-in-time cache statistics for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that computed their artifact.
    pub misses: u64,
    /// Requests that piggybacked on another request's computation.
    pub coalesced: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated resident bytes.
    pub used_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

/// The LRU + single-flight cache (generic so unit tests stay cheap;
/// the server instantiates it with its artifact type).
pub struct ArtifactCache<V> {
    inner: Mutex<Inner<V>>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl<V> ArtifactCache<V> {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                inflight: FxHashMap::default(),
                generations: FxHashMap::default(),
                used_bytes: 0,
                clock: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks `key` up; on a miss, runs `compute` (outside the cache lock)
    /// and caches its value with the reported byte size. Concurrent calls
    /// for the same key run `compute` once. Errors are propagated to all
    /// waiters and never cached; a panicking `compute` is converted to an
    /// error so waiters never deadlock on an abandoned flight. If the
    /// dataset is invalidated while the computation is in flight, the
    /// result is still returned to callers already waiting on it but is
    /// not cached (it was built from replaced input).
    pub fn get_or_compute(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> Result<(V, usize), String>,
    ) -> Result<(Arc<V>, CacheOutcome), String> {
        // Fast path + single-flight registration under one lock.
        enum Role<V> {
            Owner(Arc<Inflight<V>>),
            Waiter(Arc<Inflight<V>>),
        }
        let (role, generation_at_start) = {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let now = inner.clock;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&entry.value), CacheOutcome::Hit));
            }
            let generation = inner.generation(&key.dataset);
            match inner.inflight.get(key) {
                Some(flight) => (Role::Waiter(Arc::clone(flight)), generation),
                None => {
                    let flight = Arc::new(Inflight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    inner.inflight.insert(key.clone(), Arc::clone(&flight));
                    (Role::Owner(flight), generation)
                }
            }
        };

        if let Role::Waiter(flight) = role {
            // Someone else is computing: wait for their result.
            let mut slot = flight.slot.lock().unwrap();
            while slot.is_none() {
                slot = flight.ready.wait(slot).unwrap();
            }
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return match slot.as_ref().unwrap() {
                Ok(value) => Ok((Arc::clone(value), CacheOutcome::Coalesced)),
                Err(e) => Err(e.clone()),
            };
        }

        let Role::Owner(flight) = role else {
            unreachable!("waiters returned above")
        };
        // This call owns the computation (lock NOT held). A panic inside
        // `compute` must still resolve the flight, or every waiter (and
        // all future requests for this key) would hang.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
            .unwrap_or_else(|payload| {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Err(format!("computation panicked: {what}"))
            });
        let mut inner = self.inner.lock().unwrap();
        // Detach only this call's own marker: invalidate_dataset may have
        // removed it already (and a post-invalidation request may have
        // registered a fresh flight under the same key — leave theirs).
        if inner
            .inflight
            .get(key)
            .is_some_and(|current| Arc::ptr_eq(current, &flight))
        {
            inner.inflight.remove(key);
        }
        let outcome = match result {
            Ok((value, bytes)) => {
                let value = Arc::new(value);
                // Only cache results whose input dataset was not replaced
                // mid-computation; the value is still valid for callers
                // that requested it against the old dataset.
                if inner.generation(&key.dataset) == generation_at_start {
                    inner.clock += 1;
                    let now = inner.clock;
                    inner.map.insert(
                        key.clone(),
                        Entry {
                            value: Arc::clone(&value),
                            bytes,
                            last_used: now,
                        },
                    );
                    inner.used_bytes += bytes;
                    self.evict_lru(&mut inner, key);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((value, CacheOutcome::Miss))
            }
            Err(e) => Err(e),
        };
        let shared = match &outcome {
            Ok((value, _)) => Ok(Arc::clone(value)),
            Err(e) => Err(e.clone()),
        };
        drop(inner);
        *flight.slot.lock().unwrap() = Some(shared);
        flight.ready.notify_all();
        outcome
    }

    /// Evicts least-recently-used entries (never `keep`) until within
    /// budget or only `keep` remains.
    fn evict_lru(&self, inner: &mut Inner<V>, keep: &CacheKey) {
        while inner.used_bytes > self.budget_bytes && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.used_bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every entry for `dataset` (used when a dataset is replaced)
    /// and bumps the dataset's generation so in-flight computations
    /// started against the old data are not cached when they land.
    /// In-flight markers for the dataset are detached too: callers
    /// already waiting still get the old-data result they asked for, but
    /// requests arriving after the invalidation start a fresh flight
    /// against the new data instead of coalescing onto the stale one.
    pub fn invalidate_dataset(&self, dataset: &str) {
        let mut inner = self.inner.lock().unwrap();
        *inner.generations.entry(dataset.to_string()).or_insert(0) += 1;
        let victims: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.dataset == dataset)
            .cloned()
            .collect();
        for key in victims {
            if let Some(entry) = inner.map.remove(&key) {
                inner.used_bytes -= entry.bytes;
            }
        }
        inner.inflight.retain(|k, _| k.dataset != dataset);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            used_bytes: inner.used_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn key(dataset: &str, s: u32) -> CacheKey {
        CacheKey {
            dataset: dataset.to_string(),
            s,
            algorithm: AlgoKind::Algo2,
            weighted: false,
        }
    }

    #[test]
    fn cache_key_equality_covers_every_field() {
        let base = key("a", 2);
        assert_eq!(base, base.clone());
        assert_ne!(base, key("b", 2));
        assert_ne!(base, key("a", 3));
        assert_ne!(
            base,
            CacheKey {
                algorithm: AlgoKind::Algo1,
                ..base.clone()
            }
        );
        assert_ne!(
            base,
            CacheKey {
                weighted: true,
                ..base.clone()
            }
        );
    }

    #[test]
    fn algo_names_roundtrip() {
        for algo in [
            AlgoKind::Algo2,
            AlgoKind::Algo1,
            AlgoKind::Spgemm,
            AlgoKind::Naive,
        ] {
            assert_eq!(AlgoKind::from_name(algo.name()), Some(algo));
        }
        assert_eq!(AlgoKind::from_name("2"), Some(AlgoKind::Algo2));
        assert_eq!(AlgoKind::from_name("bogus"), None);
    }

    #[test]
    fn hit_after_miss() {
        let cache: ArtifactCache<u64> = ArtifactCache::new(1024);
        let (v, outcome) = cache.get_or_compute(&key("a", 2), || Ok((7, 8))).unwrap();
        assert_eq!((*v, outcome), (7, CacheOutcome::Miss));
        let (v, outcome) = cache
            .get_or_compute(&key("a", 2), || panic!("must not recompute"))
            .unwrap();
        assert_eq!((*v, outcome), (7, CacheOutcome::Hit));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        cache.get_or_compute(&key("a", 1), || Ok((1, 40))).unwrap();
        cache.get_or_compute(&key("a", 2), || Ok((2, 40))).unwrap();
        // Touch s=1 so s=2 is now the LRU entry.
        cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        // Inserting 40 more bytes (120 > 100) must evict s=2, not s=1.
        cache.get_or_compute(&key("a", 3), || Ok((3, 40))).unwrap();
        let (_, outcome) = cache.get_or_compute(&key("a", 1), || Ok((1, 40))).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "recently used entry survived");
        let (_, outcome) = cache.get_or_compute(&key("a", 2), || Ok((2, 40))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "LRU entry was evicted");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn oversized_entry_is_kept_alone() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        cache.get_or_compute(&key("a", 1), || Ok((1, 30))).unwrap();
        cache.get_or_compute(&key("a", 2), || Ok((2, 500))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "all other entries evicted");
        let (_, outcome) = cache.get_or_compute(&key("a", 2), || Ok((2, 500))).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "oversized entry still serves");
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        let err = cache
            .get_or_compute(&key("a", 1), || Err("nope".to_string()))
            .unwrap_err();
        assert_eq!(err, "nope");
        // The key is retried, not poisoned.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((9, 8))).unwrap();
        assert_eq!((*v, outcome), (9, CacheOutcome::Miss));
    }

    #[test]
    fn invalidate_dataset_clears_only_that_dataset() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        cache.get_or_compute(&key("a", 1), || Ok((1, 10))).unwrap();
        cache.get_or_compute(&key("b", 1), || Ok((2, 10))).unwrap();
        cache.invalidate_dataset("a");
        let (_, oa) = cache.get_or_compute(&key("a", 1), || Ok((1, 10))).unwrap();
        let (_, ob) = cache
            .get_or_compute(&key("b", 1), || unreachable!())
            .unwrap();
        assert_eq!((oa, ob), (CacheOutcome::Miss, CacheOutcome::Hit));
    }

    #[test]
    fn panicking_compute_resolves_waiters_and_retries() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        let err = cache
            .get_or_compute(&key("a", 1), || panic!("kernel assert"))
            .unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("kernel assert"), "{err}");
        // The key is usable again afterwards.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((3, 8))).unwrap();
        assert_eq!((*v, outcome), (3, CacheOutcome::Miss));
    }

    #[test]
    fn invalidation_mid_flight_prevents_stale_caching() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        // The compute simulates "dataset replaced while building".
        let (v, outcome) = cache
            .get_or_compute(&key("a", 1), || {
                cache.invalidate_dataset("a");
                Ok((1, 10))
            })
            .unwrap();
        assert_eq!(
            (*v, outcome),
            (1, CacheOutcome::Miss),
            "caller still served"
        );
        // But the stale artifact was NOT cached.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((2, 10))).unwrap();
        assert_eq!((*v, outcome), (2, CacheOutcome::Miss));
        // Subsequent entries cache normally under the new generation.
        let (_, outcome) = cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn post_invalidation_requests_do_not_coalesce_onto_stale_flight() {
        use std::sync::atomic::AtomicBool;
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        let started = AtomicBool::new(false);
        let release = AtomicBool::new(false);
        let (cache, started, release) = (&cache, &started, &release);
        std::thread::scope(|scope| {
            let owner = scope.spawn(move || {
                cache
                    .get_or_compute(&key("a", 1), || {
                        started.store(true, Ordering::SeqCst);
                        while !release.load(Ordering::SeqCst) {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        Ok((1, 10))
                    })
                    .unwrap()
            });
            while !started.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // Dataset replaced while the owner is mid-compute.
            cache.invalidate_dataset("a");
            // A post-invalidation request must start a fresh flight, not
            // wait on (and share) the stale one.
            let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((2, 10))).unwrap();
            assert_eq!((*v, outcome), (2, CacheOutcome::Miss));
            release.store(true, Ordering::SeqCst);
            let (v, outcome) = owner.join().unwrap();
            assert_eq!((*v, outcome), (1, CacheOutcome::Miss), "owner still served");
        });
        // The fresh artifact is what stays cached.
        let (v, outcome) = cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        assert_eq!((*v, outcome), (2, CacheOutcome::Hit));
    }

    #[test]
    fn single_flight_deduplicates_concurrent_computes() {
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new(1 << 20));
        let computes = AtomicUsize::new(0);
        let computes = &computes;
        let cache_ref = &cache;
        let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(move || {
                        let (v, outcome) = cache_ref
                            .get_or_compute(&key("a", 5), || {
                                computes.fetch_add(1, Ordering::SeqCst);
                                // Widen the race window.
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                Ok((11, 8))
                            })
                            .unwrap();
                        assert_eq!(*v, 11);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one computation"
        );
        let misses = outcomes
            .iter()
            .filter(|&&o| o == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        assert_eq!(cache.stats().coalesced + cache.stats().hits, 15);
    }
}
