//! Criterion: the SpGEMM substrate itself.
//!
//! Parallel vs sequential Gustavson, full vs upper-triangle product, on
//! the hypergraph overlap matrix `HᵀH` — quantifying what the +Upper
//! modification of §VI-G buys.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperline_gen::CommunityModel;
use hyperline_sparse::{overlap_matrix, spgemm, spgemm_seq, CsrMatrix, Triangle};
use std::hint::black_box;

fn spgemm_benches(c: &mut Criterion) {
    let h = CommunityModel {
        num_vertices: 4_000,
        num_edges: 6_000,
        edge_size_min: 2,
        edge_size_max: 80,
        edge_size_exponent: 2.0,
        num_communities: 150,
        core_size: 40,
        affinity: 0.6,
        community_skew: 0.8,
        vertex_skew: 0.8,
    }
    .generate(7);
    let a = CsrMatrix::from_pattern(h.edge_csr());
    let b_mat = CsrMatrix::from_pattern(h.vertex_csr());

    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    group.bench_function("parallel_full", |bch| {
        bch.iter(|| black_box(spgemm(&a, &b_mat, Triangle::Full).nnz()))
    });
    group.bench_function("parallel_upper", |bch| {
        bch.iter(|| black_box(spgemm(&a, &b_mat, Triangle::Upper).nnz()))
    });
    group.bench_function("sequential_full", |bch| {
        bch.iter(|| black_box(spgemm_seq(&a, &b_mat).nnz()))
    });
    group.bench_function("overlap_matrix_upper", |bch| {
        bch.iter(|| black_box(overlap_matrix(h.edge_csr(), h.vertex_csr(), Triangle::Upper).nnz()))
    });
    group.finish();
}

criterion_group!(benches, spgemm_benches);
criterion_main!(benches);
