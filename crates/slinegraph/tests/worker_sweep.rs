//! Worker-count sweep: the whole pipeline must be byte-identical for
//! every worker count.
//!
//! The parallel post-processing rewrite (sorted-run merges, parallel
//! restore/sort, parallel CSR construction) promises results independent
//! of the ambient thread count. This suite drives `run_pipeline` and
//! `Graph::from_edges` with workers ∈ {1, 2, 7, cores} over inputs big
//! enough to exercise the parallel paths and asserts exact equality.

use hyperline_graph::graph::Graph;
use hyperline_hypergraph::{Hypergraph, RelabelOrder};
use hyperline_slinegraph::{
    algo2_slinegraph_weighted, ensemble_slinegraphs, run_pipeline, PipelineConfig, Strategy,
};
use hyperline_util::parallel::with_threads;
use rand::prelude::*;

fn sweep_workers() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ws = vec![1usize, 2, 7, cores];
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// A random hypergraph dense enough that the s = 1 line graph has tens
/// of thousands of edges (well past the parallel-path thresholds).
fn dense_hypergraph(seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 300usize;
    let lists: Vec<Vec<u32>> = (0..1000)
        .map(|_| {
            let k = rng.gen_range(2..15usize);
            let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    Hypergraph::from_edge_lists(&lists, n)
}

#[test]
fn pipeline_byte_identical_across_worker_counts() {
    let h = dense_hypergraph(11);
    for relabel in [RelabelOrder::None, RelabelOrder::Ascending] {
        // s = 1 keeps the line graph dense (any shared vertex), well
        // past the parallel-sort threshold.
        let config = PipelineConfig {
            strategy: Strategy::default().with_relabel(relabel),
            ..PipelineConfig::new(1)
        };
        let reference = with_threads(1, || run_pipeline(&h, &config));
        assert!(
            reference.line_graph.num_edges() > 30_000,
            "input too small to exercise the parallel paths: {}",
            reference.line_graph.num_edges()
        );
        for workers in sweep_workers() {
            let run = with_threads(workers, || run_pipeline(&h, &config));
            assert_eq!(
                run.line_graph.edges, reference.line_graph.edges,
                "edges diverged ({relabel:?}, workers={workers})"
            );
            assert_eq!(
                run.components, reference.components,
                "components diverged ({relabel:?}, workers={workers})"
            );
        }
    }
}

#[test]
fn graph_construction_byte_identical_across_worker_counts() {
    // A shuffled, duplicate-laden edge list through the general builder,
    // and its cleaned form through the sorted fast path.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 800usize;
    let edges: Vec<(u32, u32)> = (0..120_000)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect();
    let reference = with_threads(1, || Graph::from_edges(n, &edges));
    let mut clean: Vec<(u32, u32)> = edges
        .iter()
        .filter(|&&(a, b)| a != b)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    clean.sort_unstable();
    clean.dedup();
    for workers in sweep_workers() {
        let g = with_threads(workers, || Graph::from_edges(n, &edges));
        assert_eq!(g, reference, "general builder diverged (workers={workers})");
        let fast = with_threads(workers, || Graph::from_sorted_edges(n, &clean));
        assert_eq!(fast, reference, "fast path diverged (workers={workers})");
    }
}

/// One snapshot of every Stage-5 metric, with f64 scores captured as
/// raw bits so "byte-identical" means exactly that.
type Stage5Snapshot = (
    Vec<Vec<u32>>,   // connected components
    u32,             // s-diameter
    Vec<(u32, u64)>, // closeness ranking (score bits)
    Vec<(u32, u64)>, // sampled betweenness ranking (score bits)
);

fn stage5_snapshot(slg: &hyperline_slinegraph::SLineGraph) -> Stage5Snapshot {
    let bits = |ranking: Vec<(u32, f64)>| -> Vec<(u32, u64)> {
        ranking.into_iter().map(|(e, s)| (e, s.to_bits())).collect()
    };
    (
        slg.connected_components(),
        slg.s_diameter(),
        bits(slg.closeness()),
        bits(slg.betweenness_sampled(64, 7)),
    )
}

#[test]
fn stage5_metrics_byte_identical_across_worker_counts() {
    // A mid-size hypergraph: the s = 1 line graph is dense enough that
    // the frontier engine's parallel push/pull paths and the batched
    // sweeps all engage, small enough for an exact-betweenness-free
    // debug-mode run.
    let mut rng = StdRng::seed_from_u64(41);
    let n = 200usize;
    let lists: Vec<Vec<u32>> = (0..600)
        .map(|_| {
            let k = rng.gen_range(2..12usize);
            let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let h = Hypergraph::from_edge_lists(&lists, n);
    let run = with_threads(1, || run_pipeline(&h, &PipelineConfig::new(1)));
    let slg = &run.line_graph;
    assert!(
        slg.num_edges() > 10_000,
        "input too small to exercise the parallel frontier paths: {}",
        slg.num_edges()
    );
    let reference = with_threads(1, || stage5_snapshot(slg));
    for workers in sweep_workers() {
        let got = with_threads(workers, || stage5_snapshot(slg));
        assert_eq!(
            got, reference,
            "stage-5 metrics diverged (workers={workers})"
        );
    }
}

#[test]
fn weighted_and_ensemble_byte_identical_across_worker_counts() {
    let h = dense_hypergraph(23);
    let st = Strategy::default();
    let (ref_weighted, _) = with_threads(1, || algo2_slinegraph_weighted(&h, 2, &st));
    let ref_ensemble = with_threads(1, || ensemble_slinegraphs(&h, &[1, 2, 3, 4], &st));
    for workers in sweep_workers() {
        let (weighted, _) = with_threads(workers, || algo2_slinegraph_weighted(&h, 2, &st));
        assert_eq!(
            weighted, ref_weighted,
            "weighted diverged (workers={workers})"
        );
        let ens = with_threads(workers, || ensemble_slinegraphs(&h, &[1, 2, 3, 4], &st));
        assert_eq!(
            ens.per_s, ref_ensemble.per_s,
            "ensemble diverged (workers={workers})"
        );
    }
}
