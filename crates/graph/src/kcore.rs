//! k-core decomposition.
//!
//! The k-core of a graph is the maximal subgraph in which every vertex
//! has degree ≥ k; a vertex's *core number* is the largest k for which it
//! belongs to the k-core. On an s-line graph this identifies the densest
//! layers of s-overlapping hyperedge communities (the "core of the
//! Friendster dataset" reading of the paper's §VI-G generalizes from
//! components to cores).
//!
//! Implementation: the classic peeling algorithm of Batagelj–Zaveršnik
//! with bucketed degrees — O(V + E).

use crate::graph::Graph;

/// Core number of every vertex (isolated vertices get 0).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bucket_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bucket_start[d + 1] += 1;
    }
    for i in 0..=max_degree {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut order = vec![0u32; n]; // vertices sorted by current degree
    let mut position = vec![0usize; n]; // position of each vertex in `order`
    let mut cursor = bucket_start.clone();
    for v in 0..n as u32 {
        let d = degree[v as usize];
        order[cursor[d]] = v;
        position[v as usize] = cursor[d];
        cursor[d] += 1;
    }
    // bucket_head[d] = index in `order` of the first vertex with degree d.
    let mut bucket_head = bucket_start;

    let mut core = vec![0u32; n];
    for idx in 0..n {
        let v = order[idx];
        core[v as usize] = degree[v as usize] as u32;
        // "Remove" v: decrement the degree of each not-yet-peeled
        // neighbor, moving it one bucket down via a swap with the head of
        // its current bucket.
        for &u in g.neighbors(v) {
            if degree[u as usize] > degree[v as usize] {
                let du = degree[u as usize];
                let pu = position[u as usize];
                let head = bucket_head[du].max(idx + 1);
                let w = order[head];
                if u != w {
                    order.swap(pu, head);
                    position[u as usize] = head;
                    position[w as usize] = pu;
                }
                bucket_head[du] = head + 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// The degeneracy of the graph: the maximum core number.
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Vertices of the k-core (possibly empty).
pub fn k_core_vertices(g: &Graph, k: u32) -> Vec<u32> {
    core_numbers(g)
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c >= k)
        .map(|(v, _)| v as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: iterative peeling by repeated scans (O(V²) but obvious).
    fn brute_force(g: &Graph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut core = vec![0u32; n];
        let mut alive = vec![true; n];
        for k in 0..=n as u32 {
            // Peel everything with degree < k among alive vertices.
            loop {
                let mut changed = false;
                for v in 0..n as u32 {
                    if !alive[v as usize] {
                        continue;
                    }
                    let d = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| alive[u as usize])
                        .count();
                    if (d as u32) < k {
                        alive[v as usize] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
            if !alive.iter().any(|&a| a) {
                break;
            }
        }
        core
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (core 2), tail 2-3 (vertex 3: core 1), isolated 4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1, 0]);
        assert_eq!(degeneracy(&g), 2);
        assert_eq!(k_core_vertices(&g, 2), vec![0, 1, 2]);
        assert_eq!(k_core_vertices(&g, 3), Vec::<u32>::new());
    }

    #[test]
    fn complete_graph_core() {
        let edges: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|a| ((a + 1)..5).map(move |b| (a, b)))
            .collect();
        let g = Graph::from_edges(5, &edges);
        assert_eq!(core_numbers(&g), vec![4; 5]);
    }

    #[test]
    fn path_graph_core_one() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(core_numbers(&g), vec![1; 6]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..25 {
            let n = rng.gen_range(1..40usize);
            let m = rng.gen_range(0..100usize);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let g = Graph::from_edges(n, &edges);
            assert_eq!(core_numbers(&g), brute_force(&g), "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn core_number_at_most_degree() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(45);
        let n = 50usize;
        let edges: Vec<(u32, u32)> = (0..150)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let core = core_numbers(&g);
        for v in 0..n as u32 {
            assert!(core[v as usize] as usize <= g.degree(v));
        }
    }
}
