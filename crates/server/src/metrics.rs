//! Per-endpoint request/latency counters for `GET /metrics`.
//!
//! Lock-free atomics on a fixed route table: recording a sample is a
//! handful of relaxed atomic adds, cheap enough to run on every request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The server's routes (fixed at compile time so metrics need no map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /` — endpoint index.
    Index,
    /// `GET /healthz`.
    Health,
    /// `GET /metrics`.
    Metrics,
    /// `GET /datasets`.
    ListDatasets,
    /// `POST /datasets`.
    AddDataset,
    /// `GET /datasets/{d}/stats`.
    Stats,
    /// `GET /datasets/{d}/slg`.
    Slg,
    /// `GET /datasets/{d}/components`.
    Components,
    /// `GET /datasets/{d}/betweenness`.
    Betweenness,
    /// `GET /datasets/{d}/spectrum`.
    Spectrum,
    /// `GET /datasets/{d}/sweep`.
    Sweep,
    /// `POST /query` (batched sub-queries).
    Query,
    /// Anything else.
    NotFound,
}

impl Route {
    /// Every route, in `/metrics` display order.
    pub const ALL: [Route; 13] = [
        Route::Index,
        Route::Health,
        Route::Metrics,
        Route::ListDatasets,
        Route::AddDataset,
        Route::Stats,
        Route::Slg,
        Route::Components,
        Route::Betweenness,
        Route::Spectrum,
        Route::Sweep,
        Route::Query,
        Route::NotFound,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Route::Index => "index",
            Route::Health => "healthz",
            Route::Metrics => "metrics",
            Route::ListDatasets => "list_datasets",
            Route::AddDataset => "add_dataset",
            Route::Stats => "stats",
            Route::Slg => "slg",
            Route::Components => "components",
            Route::Betweenness => "betweenness",
            Route::Spectrum => "spectrum",
            Route::Sweep => "sweep",
            Route::Query => "query",
            Route::NotFound => "not_found",
        }
    }

    fn index(self) -> usize {
        Route::ALL.iter().position(|&r| r == self).unwrap()
    }
}

/// Counters for one route.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Sum of handling latencies, microseconds.
    pub micros_total: AtomicU64,
    /// Worst handling latency, microseconds.
    pub micros_max: AtomicU64,
}

/// All server counters.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    endpoints: [EndpointCounters; Route::ALL.len()],
    /// Connections accepted into the worker queue.
    pub connections_accepted: AtomicU64,
    /// Connections rejected with 503 because the queue was full.
    pub connections_rejected: AtomicU64,
    /// Requests whose parse failed (400/417/501 responses that close
    /// the connection).
    pub bad_requests: AtomicU64,
    /// Responses streamed (chunked or close-delimited) instead of
    /// rendered into a fixed-length buffer.
    pub streamed_responses: AtomicU64,
    /// Streamed responses compressed with gzip (negotiated via
    /// `Accept-Encoding`).
    pub gzip_responses: AtomicU64,
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request on `route`.
    pub fn record(&self, route: Route, status: u16, elapsed: Duration) {
        let counters = &self.endpoints[route.index()];
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        counters.micros_total.fetch_add(micros, Ordering::Relaxed);
        counters.micros_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// The counters of one route.
    pub fn endpoint(&self, route: Route) -> &EndpointCounters {
        &self.endpoints[route.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_route() {
        let m = ServerMetrics::new();
        m.record(Route::Slg, 200, Duration::from_micros(120));
        m.record(Route::Slg, 200, Duration::from_micros(80));
        m.record(Route::Slg, 404, Duration::from_micros(10));
        m.record(Route::Health, 200, Duration::from_micros(5));
        let slg = m.endpoint(Route::Slg);
        assert_eq!(slg.requests.load(Ordering::Relaxed), 3);
        assert_eq!(slg.errors.load(Ordering::Relaxed), 1);
        assert_eq!(slg.micros_total.load(Ordering::Relaxed), 210);
        assert_eq!(slg.micros_max.load(Ordering::Relaxed), 120);
        assert_eq!(
            m.endpoint(Route::Health).requests.load(Ordering::Relaxed),
            1
        );
        assert_eq!(m.endpoint(Route::Sweep).requests.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn route_names_unique() {
        let mut names: Vec<&str> = Route::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Route::ALL.len());
    }
}
