// Fixture: same two-lock struct, but every path agrees on the a-then-b
// order, and one path drops its guard before crossing. Zero HL008
// findings.
use crate::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    fn both_forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        0
    }

    fn disjoint(&self) -> u32 {
        let gb = self.b.lock();
        drop(gb);
        self.grab_a()
    }

    fn grab_a(&self) -> u32 {
        let ga = self.a.lock();
        1
    }
}
