//! The hypergraph type: a bipartite incidence structure stored as two CSRs.

use crate::csr::{Csr, CsrOutOfRange};
use hyperline_util::fxhash::FxHashSet;

/// A non-uniform hypergraph `H = (V, E)` with `n` vertices and `m`
/// hyperedges, stored as both directions of its bipartite incidence
/// structure:
///
/// * edge → vertex lists (rows of the incidence matrix `Hᵀ`), and
/// * vertex → edge lists (rows of `H`).
///
/// Both neighbor directions are sorted, which the algorithms rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// edge -> member vertices
    edges: Csr,
    /// vertex -> incident edges
    vertices: Csr,
}

impl Hypergraph {
    /// Builds a hypergraph from per-edge vertex lists over `num_vertices`
    /// vertices. Lists are sorted/deduplicated; empty edges are allowed
    /// (use [`crate::prep`] to strip them).
    pub fn from_edge_lists(lists: &[Vec<u32>], num_vertices: usize) -> Self {
        let edges = Csr::from_lists(lists, num_vertices);
        let vertices = edges.transpose();
        Self { edges, vertices }
    }

    /// Checked variant of [`Hypergraph::from_edge_lists`] for untrusted
    /// inputs (dataset loads): returns an error instead of panicking on
    /// an out-of-range vertex.
    pub fn try_from_edge_lists(
        lists: &[Vec<u32>],
        num_vertices: usize,
    ) -> Result<Self, CsrOutOfRange> {
        let edges = Csr::try_from_lists(lists, num_vertices)?;
        let vertices = edges.transpose();
        Ok(Self { edges, vertices })
    }

    /// Builds a hypergraph from `(edge, vertex)` incidence pairs.
    pub fn from_incidence_pairs(
        pairs: &[(u32, u32)],
        num_edges: usize,
        num_vertices: usize,
    ) -> Self {
        let edges = Csr::from_pairs(pairs, num_edges, num_vertices);
        let vertices = edges.transpose();
        Self { edges, vertices }
    }

    /// Checked variant of [`Hypergraph::from_incidence_pairs`] for
    /// untrusted inputs: returns an error instead of panicking on an
    /// out-of-range edge or vertex ID.
    pub fn try_from_incidence_pairs(
        pairs: &[(u32, u32)],
        num_edges: usize,
        num_vertices: usize,
    ) -> Result<Self, CsrOutOfRange> {
        let edges = Csr::try_from_pairs(pairs, num_edges, num_vertices)?;
        let vertices = edges.transpose();
        Ok(Self { edges, vertices })
    }

    /// Wraps a pre-built edge→vertex CSR.
    pub fn from_edge_csr(edges: Csr) -> Self {
        let vertices = edges.transpose();
        Self { edges, vertices }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertices.num_rows()
    }

    /// Number of hyperedges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.num_rows()
    }

    /// Number of incidences (non-zeros of the incidence matrix, `|H|`).
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.edges.num_entries()
    }

    /// The sorted vertex list of hyperedge `e`.
    #[inline]
    pub fn edge_vertices(&self, e: u32) -> &[u32] {
        self.edges.neighbors(e)
    }

    /// The sorted list of hyperedges incident to vertex `v`.
    #[inline]
    pub fn vertex_edges(&self, v: u32) -> &[u32] {
        self.vertices.neighbors(v)
    }

    /// Size `|e|` of hyperedge `e` (the paper's `inc({e})`).
    #[inline]
    pub fn edge_size(&self, e: u32) -> usize {
        self.edges.degree(e)
    }

    /// Degree `deg(v)` of vertex `v` (the paper's `adj({v})`).
    #[inline]
    pub fn vertex_degree(&self, v: u32) -> usize {
        self.vertices.degree(v)
    }

    /// The edge→vertex CSR (rows of `Hᵀ`).
    #[inline]
    pub fn edge_csr(&self) -> &Csr {
        &self.edges
    }

    /// The vertex→edge CSR (rows of `H`).
    #[inline]
    pub fn vertex_csr(&self) -> &Csr {
        &self.vertices
    }

    /// `inc(e, f) = |e ∩ f|`: the number of shared vertices of two edges.
    pub fn inc(&self, e: u32, f: u32) -> usize {
        crate::csr::intersection_size(self.edge_vertices(e), self.edge_vertices(f))
    }

    /// `adj(u, v)`: the number of hyperedges containing both vertices.
    pub fn adj(&self, u: u32, v: u32) -> usize {
        crate::csr::intersection_size(self.vertex_edges(u), self.vertex_edges(v))
    }

    /// `inc(F) = |∩_{e ∈ F} e|` for a set of edges.
    pub fn inc_set(&self, edges: &[u32]) -> usize {
        match edges {
            [] => 0,
            [e] => self.edge_size(*e),
            [first, rest @ ..] => {
                let mut current: FxHashSet<u32> =
                    self.edge_vertices(*first).iter().copied().collect();
                for &e in rest {
                    let members: FxHashSet<u32> = self.edge_vertices(e).iter().copied().collect();
                    current.retain(|v| members.contains(v));
                    if current.is_empty() {
                        break;
                    }
                }
                current.len()
            }
        }
    }

    /// `adj(U) = |{e ⊇ U}|` for a set of vertices.
    pub fn adj_set(&self, verts: &[u32]) -> usize {
        match verts {
            [] => 0,
            [v] => self.vertex_degree(*v),
            [first, rest @ ..] => {
                let mut current: FxHashSet<u32> =
                    self.vertex_edges(*first).iter().copied().collect();
                for &v in rest {
                    let edges: FxHashSet<u32> = self.vertex_edges(v).iter().copied().collect();
                    current.retain(|e| edges.contains(e));
                    if current.is_empty() {
                        break;
                    }
                }
                current.len()
            }
        }
    }

    /// The dual hypergraph `H*`: vertices and edges swap roles (the
    /// incidence matrix is transposed). `(H*)* == H`.
    pub fn dual(&self) -> Hypergraph {
        Hypergraph {
            edges: self.vertices.clone(),
            vertices: self.edges.clone(),
        }
    }

    /// Maximum edge size `Δe`-style statistic.
    pub fn max_edge_size(&self) -> usize {
        (0..self.num_edges() as u32)
            .map(|e| self.edge_size(e))
            .max()
            .unwrap_or(0)
    }

    /// Maximum vertex degree `Δv`.
    pub fn max_vertex_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.vertex_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean vertex degree `d_v`.
    pub fn mean_vertex_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_incidences() as f64 / self.num_vertices() as f64
        }
    }

    /// Mean edge size `d_e`.
    pub fn mean_edge_size(&self) -> f64 {
        if self.num_edges() == 0 {
            0.0
        } else {
            self.num_incidences() as f64 / self.num_edges() as f64
        }
    }

    /// Extracts all edges as owned vertex lists (for round-tripping and
    /// tests; allocates).
    pub fn to_edge_lists(&self) -> Vec<Vec<u32>> {
        (0..self.num_edges() as u32)
            .map(|e| self.edge_vertices(e).to_vec())
            .collect()
    }

    /// The paper's running example (Fig. 1): vertices `a..f` mapped to
    /// `0..=5`, edges `1:{a,b,c}, 2:{b,c,d}, 3:{a,b,c,d,e}, 4:{e,f}` mapped
    /// to `0..=3`.
    pub fn paper_example() -> Self {
        Self::from_edge_lists(
            &[
                vec![0, 1, 2],
                vec![1, 2, 3],
                vec![0, 1, 2, 3, 4],
                vec![4, 5],
            ],
            6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        let h = Hypergraph::paper_example();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.num_incidences(), 13);
        assert_eq!(h.edge_size(2), 5);
        assert_eq!(h.vertex_degree(1), 3); // b in edges 0,1,2
        assert_eq!(h.max_edge_size(), 5);
        assert_eq!(h.max_vertex_degree(), 3);
    }

    #[test]
    fn paper_example_inc_adj() {
        let h = Hypergraph::paper_example();
        // Paper: adj(b, c) = 3 (edges 1,2,3 contain both), inc({1,2,3}) = 2 ({b,c}).
        assert_eq!(h.adj(1, 2), 3);
        assert_eq!(h.inc_set(&[0, 1, 2]), 2);
        // inc(e,f) examples
        assert_eq!(h.inc(0, 1), 2); // {b,c}
        assert_eq!(h.inc(0, 2), 3); // {a,b,c}
        assert_eq!(h.inc(0, 3), 0);
        assert_eq!(h.inc(2, 3), 1); // {e}
    }

    #[test]
    fn inc_adj_singletons_and_empty() {
        let h = Hypergraph::paper_example();
        assert_eq!(h.inc_set(&[2]), 5);
        assert_eq!(h.inc_set(&[]), 0);
        assert_eq!(h.adj_set(&[1]), 3);
        assert_eq!(h.adj_set(&[]), 0);
        assert_eq!(h.adj_set(&[1, 2]), 3);
        assert_eq!(h.adj_set(&[0, 5]), 0);
    }

    #[test]
    fn dual_involution() {
        let h = Hypergraph::paper_example();
        let d = h.dual();
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.num_edges(), 6);
        // Dual edge for vertex b (=1) contains original edges {0,1,2}.
        assert_eq!(d.edge_vertices(1), &[0, 1, 2]);
        assert_eq!(d.dual(), h);
    }

    #[test]
    fn duality_of_inc_and_adj() {
        // adj on vertices in H equals inc on edges in H*.
        let h = Hypergraph::paper_example();
        let d = h.dual();
        for u in 0..h.num_vertices() as u32 {
            for v in 0..h.num_vertices() as u32 {
                assert_eq!(h.adj(u, v), d.inc(u, v), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn from_incidence_pairs_matches() {
        let h = Hypergraph::paper_example();
        let pairs: Vec<(u32, u32)> = h.edge_csr().iter_pairs().collect();
        let h2 = Hypergraph::from_incidence_pairs(&pairs, 4, 6);
        assert_eq!(h, h2);
    }

    #[test]
    fn means() {
        let h = Hypergraph::paper_example();
        assert!((h.mean_edge_size() - 13.0 / 4.0).abs() < 1e-12);
        assert!((h.mean_vertex_degree() - 13.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::from_edge_lists(&[], 0);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.mean_edge_size(), 0.0);
        assert_eq!(h.max_edge_size(), 0);
    }

    #[test]
    fn singleton_and_empty_edges_allowed() {
        let h = Hypergraph::from_edge_lists(&[vec![0], vec![]], 1);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge_size(0), 1);
        assert_eq!(h.edge_size(1), 0);
    }

    #[test]
    fn to_edge_lists_roundtrip() {
        let lists = vec![
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![0, 1, 2, 3, 4],
            vec![4, 5],
        ];
        let h = Hypergraph::from_edge_lists(&lists, 6);
        assert_eq!(h.to_edge_lists(), lists);
    }

    #[test]
    fn graphs_are_two_uniform_hypergraphs() {
        // A graph edge {u, v} is just a 2-element hyperedge.
        let g = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![0, 2]], 3);
        assert!(g.to_edge_lists().iter().all(|e| e.len() == 2));
        assert_eq!(g.adj(0, 1), 1);
    }
}
