//! Closeness centrality and local clustering coefficients.
//!
//! The paper's Stage 5 computes "s-connected components, s-centrality,
//! s-distance, etc." — any standard kernel applies to the squeezed s-line
//! graph. Besides betweenness (see [`crate::betweenness`]), these two are
//! the common centrality/cohesion measures in hypernetwork analysis
//! (Aksoy et al. define s-closeness via s-walk distances, and clustering
//! coefficients appear in the related-work thread the paper cites).

use crate::graph::Graph;
use hyperline_util::parallel::par_map_range;

/// Harmonic closeness centrality of every vertex:
/// `C(v) = Σ_{u ≠ v} 1 / d(v, u)` with unreachable pairs contributing 0,
/// normalized by `n - 1` so values lie in `[0, 1]`.
///
/// Harmonic (rather than classic) closeness is used because s-line graphs
/// are routinely disconnected, and the harmonic form handles that without
/// per-component bookkeeping.
///
/// Runs on the batched multi-source sweep of [`crate::frontier`]:
/// source-parallel, direction-optimizing, per-worker reused scratch —
/// no per-source distance allocation, and output bit-identical for
/// every worker count.
pub fn harmonic_closeness(g: &Graph) -> Vec<f64> {
    crate::frontier::harmonic_closeness(g)
}

/// Local clustering coefficient of every vertex: the fraction of its
/// neighbor pairs that are themselves adjacent. Degree < 2 gives 0.
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    par_map_range(g.num_vertices(), |v| {
        let nbrs = g.neighbors(v as u32);
        let k = nbrs.len();
        if k < 2 {
            return 0.0;
        }
        let mut closed = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
        2.0 * closed as f64 / (k * (k - 1)) as f64
    })
}

/// Mean of the local clustering coefficients over vertices with
/// degree ≥ 2 (the standard "average clustering" summary); 0 when no
/// such vertex exists.
pub fn average_clustering(g: &Graph) -> f64 {
    let coeffs = local_clustering(g);
    let eligible: Vec<f64> = (0..g.num_vertices() as u32)
        .filter(|&v| g.degree(v) >= 2)
        .map(|v| coeffs[v as usize])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-12, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn closeness_on_path() {
        // Path 0-1-2: ends get (1 + 1/2)/2, center gets (1+1)/2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_close(&harmonic_closeness(&g), &[0.75, 1.0, 0.75]);
    }

    #[test]
    fn closeness_complete_graph_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_close(&harmonic_closeness(&g), &[1.0; 4]);
    }

    #[test]
    fn closeness_handles_disconnection() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let c = harmonic_closeness(&g);
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn closeness_tiny_graphs() {
        assert!(harmonic_closeness(&Graph::from_edges(0, &[])).is_empty());
        assert_eq!(harmonic_closeness(&Graph::from_edges(1, &[])), vec![0.0]);
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_close(&local_clustering(&tri), &[1.0; 3]);
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_close(&local_clustering(&path), &[0.0; 3]);
    }

    #[test]
    fn clustering_mixed() {
        // Triangle 0-1-2 plus pendant 3 on vertex 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let c = local_clustering(&g);
        assert_eq!(c[0], 1.0);
        assert_eq!(c[1], 1.0);
        // Vertex 2 has neighbors {0, 1, 3}: one closed pair of three.
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[3], 0.0);
        // Average over degree >= 2 vertices: (1 + 1 + 1/3) / 3.
        assert!((average_clustering(&g) - (2.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_clustering_empty_cases() {
        assert_eq!(average_clustering(&Graph::from_edges(0, &[])), 0.0);
        assert_eq!(average_clustering(&Graph::from_edges(3, &[(0, 1)])), 0.0);
    }
}
