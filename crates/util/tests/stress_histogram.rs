//! Seeded-random stress variant of the model-checked histogram unit
//! (`tests/sched_histogram.rs`), runnable under plain `cargo test` with
//! real threads. The exhaustive scheduler covers *all* bounded
//! interleavings of a tiny instance; this covers *sampled* interleavings
//! of bigger instances, seeded for reproducibility.

use hyperline_util::telemetry::Histogram;
use std::sync::Arc;

/// splitmix64 — the workspace's standard tiny deterministic generator.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn jitter(rng: &mut u64) {
    for _ in 0..(splitmix(rng) % 4) {
        std::thread::yield_now();
    }
}

#[test]
fn stress_concurrent_records_and_merges() {
    let mut seed = 0x1157_0921u64;
    for round in 0..60 {
        let threads = 2 + (round % 3) as usize;
        let per_thread = 16;
        let h = Arc::new(Histogram::new());
        let sink = Arc::new(Histogram::new());
        let mut expected_sum = 0u64;
        let mut expected_max = 0u64;
        let mut thread_seeds = Vec::new();
        for _ in 0..threads {
            let s = splitmix(&mut seed);
            let mut probe = s;
            for _ in 0..per_thread {
                let v = splitmix(&mut probe) % 1_000;
                expected_sum += v;
                expected_max = expected_max.max(v);
            }
            thread_seeds.push(s);
        }
        std::thread::scope(|scope| {
            for s in &thread_seeds {
                let h = h.clone();
                let mut rng = *s;
                // Jitter draws from a separate stream so the value
                // sequence matches the expected-total precomputation.
                let mut jrng = s.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5eed;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let v = splitmix(&mut rng) % 1_000;
                        jitter(&mut jrng);
                        h.record(v);
                    }
                });
            }
            // Concurrent merges must stay within recorded bounds.
            let snap = h.snapshot();
            assert!(snap.count() <= (threads * per_thread) as u64);
            assert!(snap.sum() <= expected_sum);
            sink.merge_from(&h);
            assert!(sink.count() <= (threads * per_thread) as u64);
        });
        assert_eq!(
            h.count(),
            (threads * per_thread) as u64,
            "round {round}: lost records"
        );
        assert_eq!(h.sum(), expected_sum, "round {round}: sum drifted");
        assert_eq!(h.max(), expected_max, "round {round}: max drifted");
        let settled = Histogram::new();
        settled.merge_from(&h);
        assert_eq!(
            settled.count(),
            h.count(),
            "round {round}: quiescent merge lost counts"
        );
        assert_eq!(
            settled.sum(),
            h.sum(),
            "round {round}: quiescent merge lost sum"
        );
    }
}
