//! Figure 5 / §V-A: s-line graphs of the virology genomics data.
//!
//! Computes the s-line graphs of the genomics profile at s = 1, 3, 5 and
//! reports, per s: graph size, component structure, and the top genes by
//! s-betweenness centrality. The six planted "important genes" (named
//! after the paper's ISG15, IL6, ATF3, RSAD2, USP18, IFIT1) rise to the
//! top as s grows, and the deepest pair (the paper's IFIT1/USP18, sharing
//! 100+ conditions) stays connected at extreme s.
//!
//! `cargo run -p hyperline-bench --release --bin fig5_genes`
//! Options: `--seed=7`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_slinegraph::{run_pipeline, PipelineConfig};
use hyperline_util::table::Table;

const IMPORTANT_GENES: [&str; 6] = ["ISG15", "IL6", "ATF3", "RSAD2", "USP18", "IFIT1"];

fn main() {
    print_header("Figure 5: s-line graphs of the virology genomics data");
    let seed: u64 = arg("seed", 7);
    let h = Profile::Genomics.generate(seed);
    let planted = Profile::Genomics.planted_edge_range(seed).unwrap();
    let gene = |e: u32| -> String {
        if planted.contains(&e) {
            IMPORTANT_GENES[(e - planted.start) as usize].to_string()
        } else {
            format!("gene-{e}")
        }
    };
    println!(
        "{} genes (hyperedges) × {} conditions (vertices)\n",
        h.num_edges(),
        h.num_vertices()
    );

    let mut table = Table::new([
        "s",
        "vertices",
        "edges",
        "components",
        "top-3 by s-betweenness",
    ]);
    for s in [1u32, 3, 5] {
        let run = run_pipeline(&h, &PipelineConfig::new(s));
        let bc = run.line_graph.betweenness();
        let top: Vec<String> = bc
            .iter()
            .take(3)
            .map(|&(e, w)| format!("{}({w:.3})", gene(e)))
            .collect();
        table.row([
            s.to_string(),
            run.line_graph.num_vertices().to_string(),
            run.line_graph.num_edges().to_string(),
            run.components.as_ref().unwrap().len().to_string(),
            top.join(", "),
        ]);
    }
    table.print();

    // The planted genes' importance ranking at s = 5 (the paper's reading
    // of Figure 5c: the six genes are clearly identifiable).
    let run = run_pipeline(&h, &PipelineConfig::new(5));
    let bc = run.line_graph.betweenness();
    let ranks: Vec<(String, usize)> = planted
        .clone()
        .map(|e| {
            let rank = bc
                .iter()
                .position(|&(v, _)| v == e)
                .map(|p| p + 1)
                .unwrap_or(usize::MAX);
            (gene(e), rank)
        })
        .collect();
    println!(
        "\nimportant-gene betweenness ranks at s = 5 (of {} genes):",
        bc.len()
    );
    for (name, rank) in &ranks {
        println!("  {name:<6} rank {rank}");
    }
    let top10 = ranks.iter().filter(|&&(_, r)| r <= 10).count();
    println!("\n{top10}/6 planted genes rank in the top 10 — the s-line graph isolates them");
}
