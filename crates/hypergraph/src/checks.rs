//! Structural validation and summary statistics.
//!
//! [`validate`] checks the internal invariants of a [`Hypergraph`] — the
//! two CSR directions must be exact transposes with sorted, in-range,
//! duplicate-free rows. Generators, loaders and fuzzers call it to catch
//! construction bugs early. [`degree_histograms`] produces the log-binned
//! degree/size distributions used to characterize skew (Table IV's
//! "skewed hyperedge degree distribution" note).

use crate::hypergraph::Hypergraph;
use hyperline_util::stats::log_histogram;

/// A violated hypergraph invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A neighbor list is not strictly sorted (has duplicates or is out
    /// of order).
    UnsortedRow {
        /// "edge" or "vertex" — which direction.
        side: &'static str,
        /// Row ID.
        row: u32,
    },
    /// A target ID is out of range.
    TargetOutOfRange {
        /// "edge" or "vertex".
        side: &'static str,
        /// Row ID.
        row: u32,
        /// The offending target.
        target: u32,
    },
    /// Entry `(e, v)` present in one direction but not the other.
    AsymmetricIncidence {
        /// Hyperedge ID.
        edge: u32,
        /// Vertex ID.
        vertex: u32,
        /// Direction the entry was found in ("edge→vertex" or
        /// "vertex→edge").
        present_in: &'static str,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnsortedRow { side, row } => {
                write!(f, "{side} row {row} is not strictly sorted")
            }
            Violation::TargetOutOfRange { side, row, target } => {
                write!(f, "{side} row {row} has out-of-range target {target}")
            }
            Violation::AsymmetricIncidence {
                edge,
                vertex,
                present_in,
            } => {
                write!(
                    f,
                    "incidence ({edge},{vertex}) only present in {present_in}"
                )
            }
        }
    }
}

/// Checks every structural invariant; returns all violations found
/// (empty = valid). O(|H| log d).
pub fn validate(h: &Hypergraph) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (n, m) = (h.num_vertices(), h.num_edges());

    for e in 0..m as u32 {
        let row = h.edge_vertices(e);
        if row.windows(2).any(|w| w[0] >= w[1]) {
            violations.push(Violation::UnsortedRow {
                side: "edge",
                row: e,
            });
        }
        for &v in row {
            if (v as usize) >= n {
                violations.push(Violation::TargetOutOfRange {
                    side: "edge",
                    row: e,
                    target: v,
                });
            } else if h.vertex_edges(v).binary_search(&e).is_err() {
                violations.push(Violation::AsymmetricIncidence {
                    edge: e,
                    vertex: v,
                    present_in: "edge→vertex",
                });
            }
        }
    }
    for v in 0..n as u32 {
        let row = h.vertex_edges(v);
        if row.windows(2).any(|w| w[0] >= w[1]) {
            violations.push(Violation::UnsortedRow {
                side: "vertex",
                row: v,
            });
        }
        for &e in row {
            if (e as usize) >= m {
                violations.push(Violation::TargetOutOfRange {
                    side: "vertex",
                    row: v,
                    target: e,
                });
            } else if h.edge_vertices(e).binary_search(&v).is_err() {
                violations.push(Violation::AsymmetricIncidence {
                    edge: e,
                    vertex: v,
                    present_in: "vertex→edge",
                });
            }
        }
    }
    violations
}

/// Asserts validity, panicking with the first violation (test helper).
pub fn assert_valid(h: &Hypergraph) {
    let violations = validate(h);
    assert!(
        violations.is_empty(),
        "invalid hypergraph: {}",
        violations[0]
    );
}

/// Log-binned histograms of (vertex degrees, edge sizes): bin `i` counts
/// entities whose degree lies in `[2^i, 2^(i+1))`.
pub fn degree_histograms(h: &Hypergraph) -> (Vec<usize>, Vec<usize>) {
    let vertex_hist = log_histogram((0..h.num_vertices() as u32).map(|v| h.vertex_degree(v)));
    let edge_hist = log_histogram((0..h.num_edges() as u32).map(|e| h.edge_size(e)));
    (vertex_hist, edge_hist)
}

/// A simple skew score: `max degree / mean degree` on the hyperedge side
/// (1.0 = perfectly uniform).
pub fn edge_size_skew(h: &Hypergraph) -> f64 {
    let mean = h.mean_edge_size();
    if mean == 0.0 {
        1.0
    } else {
        h.max_edge_size() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_valid() {
        assert!(validate(&Hypergraph::paper_example()).is_empty());
        assert_valid(&Hypergraph::paper_example());
    }

    #[test]
    fn constructed_hypergraphs_validate() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let n = rng.gen_range(1..30usize);
            let m = rng.gen_range(0..40usize);
            let lists: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    (0..rng.gen_range(0..8))
                        .map(|_| rng.gen_range(0..n as u32))
                        .collect()
                })
                .collect();
            assert_valid(&Hypergraph::from_edge_lists(&lists, n));
        }
    }

    #[test]
    fn histograms_shape() {
        let h = Hypergraph::paper_example();
        let (vh, eh) = degree_histograms(&h);
        // Vertex degrees: 2,3,3,2,2,1 -> bins [1, 5] (bin0: {1}, bin1: {2,2,2,3,3}).
        assert_eq!(vh, vec![1, 5]);
        // Edge sizes: 3,3,5,2 -> bin1: {2,3,3}, bin2: {5}.
        assert_eq!(eh, vec![0, 3, 1]);
    }

    #[test]
    fn skew_score() {
        let uniform = Hypergraph::from_edge_lists(&[vec![0, 1], vec![2, 3]], 4);
        assert!((edge_size_skew(&uniform) - 1.0).abs() < 1e-12);
        let skewed = Hypergraph::from_edge_lists(&[vec![0], (0..20).collect()], 20);
        assert!(edge_size_skew(&skewed) > 1.5);
        let empty = Hypergraph::from_edge_lists(&[], 0);
        assert_eq!(edge_size_skew(&empty), 1.0);
    }

    #[test]
    fn violation_display() {
        let v = Violation::UnsortedRow {
            side: "edge",
            row: 3,
        };
        assert!(v.to_string().contains("row 3"));
        let v = Violation::TargetOutOfRange {
            side: "vertex",
            row: 1,
            target: 99,
        };
        assert!(v.to_string().contains("99"));
        let v = Violation::AsymmetricIncidence {
            edge: 1,
            vertex: 2,
            present_in: "edge→vertex",
        };
        assert!(v.to_string().contains("(1,2)"));
    }
}
