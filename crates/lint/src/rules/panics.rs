//! HL007 — panic sinks reachable from server request roots.
//!
//! Roots are functions annotated `// lint: request-root` (the server's
//! per-connection handler). A finding is a panicking sink —
//! `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, or (in `// lint: hot-path` functions) slice
//! indexing — inside a function reachable from a root, where the
//! function either lives in `crates/server/src/` or carries the
//! hot-path marker. Every finding reports the full shortest call chain
//! from the root, rendered `root->hop->sink_fn` with no spaces so a
//! chain suffix can key an allowlist entry
//! (`HL007 <file> <chain-suffix>:<sink> # why`).
//!
//! Deleting the root annotation does not silently disable the rule: a
//! workspace that contains server sources but no root is itself a
//! finding.

use crate::callgraph::CallGraph;
use crate::Finding;

const SERVER_SRC: &str = "crates/server/src/";

/// Reachability stats for the summary line.
#[derive(Clone, Copy, Default)]
pub struct PanicsInfo {
    /// Number of `// lint: request-root` functions.
    pub roots: usize,
    /// Functions reachable from the roots (roots included).
    pub reachable: usize,
}

/// Runs HL007 over the graph.
pub fn run(graph: &CallGraph<'_>, findings: &mut Vec<Finding>) -> PanicsInfo {
    let roots = graph.marked("request-root");
    let has_server = graph.files.iter().any(|f| f.path.starts_with(SERVER_SRC));
    if roots.is_empty() {
        if let Some(f) = graph.files.iter().find(|f| f.path.starts_with(SERVER_SRC)) {
            findings.push(Finding {
                file: f.path.clone(),
                line: 1,
                rule: "HL007",
                what: "no-request-root: server sources present but no `// lint: request-root` fn"
                    .to_string(),
                hint:
                    "annotate the per-connection request handler so panic reachability has a root",
            });
        }
        let _ = has_server;
        return PanicsInfo::default();
    }
    let parent = graph.bfs(&roots);
    let mut reachable = 0usize;
    for (id, node) in graph.nodes.iter().enumerate() {
        if parent[id].is_none() {
            continue;
        }
        reachable += 1;
        let in_server = node.file.starts_with(SERVER_SRC);
        let hot = node.def.markers.iter().any(|m| m == "hot-path");
        for sink in &node.def.sinks {
            let applies = if sink.what == "index[]" {
                hot
            } else {
                in_server || hot
            };
            if !applies {
                continue;
            }
            let chain = graph.chain(&parent, id);
            findings.push(Finding {
                file: node.file.to_string(),
                line: sink.line as usize,
                rule: "HL007",
                what: format!("panic sink reachable from request root: {chain}:{}", sink.what),
                hint: "return a logged error instead, or allowlist the chain-keyed entry in scripts/lint_allow.txt with a justification",
            });
        }
    }
    PanicsInfo {
        roots: roots.len(),
        reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let asts: Vec<_> = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = CallGraph::build(&asts);
        let mut findings = Vec::new();
        run(&graph, &mut findings);
        findings
    }

    #[test]
    fn reports_chain_across_two_hops() {
        let findings = run_on(&[(
            "crates/server/src/handler.rs",
            concat!(
                "// lint: request-root\n",
                "fn handle(s: &S) { stage_one(s); }\n",
                "fn stage_one(s: &S) { stage_two(s); }\n",
                "fn stage_two(s: &S) -> u32 { s.v.unwrap() }\n",
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "HL007");
        assert_eq!(findings[0].line, 4);
        assert!(
            findings[0]
                .what
                .contains("handle->stage_one->stage_two:.unwrap()"),
            "{}",
            findings[0].what
        );
    }

    #[test]
    fn unreachable_sinks_stay_silent() {
        let findings = run_on(&[(
            "crates/server/src/handler.rs",
            concat!(
                "// lint: request-root\n",
                "fn handle(s: &S) {}\n",
                "fn startup_only(s: &S) -> u32 { s.v.unwrap() }\n",
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn index_sinks_require_hot_path_marker() {
        let src = concat!(
            "// lint: request-root\n",
            "fn handle(v: &[u32]) -> u32 { kernel(v) }\n",
            "// lint: hot-path\n",
            "fn kernel(v: &[u32]) -> u32 { v[0] }\n",
        );
        let findings = run_on(&[("crates/util/src/k.rs", src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].what.ends_with("kernel:index[]"),
            "{}",
            findings[0].what
        );
        // Without the marker the indexing is not a finding.
        let unmarked = src.replace("// lint: hot-path\n", "");
        let findings = run_on(&[("crates/util/src/k.rs", &unmarked)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_root_in_server_workspace_is_a_finding() {
        let findings = run_on(&[("crates/server/src/handler.rs", "fn handle() {}\n")]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].what.starts_with("no-request-root"));
    }
}
