//! Figure 6: normalized algebraic connectivity of condMat s-line graphs.
//!
//! Computes the ensemble of s-line graphs for s = 1..16 on the condMat
//! author-paper profile (Algorithm 3: one counting pass) and prints the
//! second-smallest normalized-Laplacian eigenvalue of each s-line graph's
//! largest component. The paper's shape: low connectivity through
//! s ≈ 3..12 (authors collaborate sparsely), then a sharp rise from
//! s = 13 (tight author teams with 13+ joint papers).
//!
//! `cargo run -p hyperline-bench --release --bin fig6_connectivity`
//! Options: `--seed=42 --max-s=16`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_slinegraph::{ensemble_slinegraphs, SLineGraph, Strategy};
use hyperline_util::table::Table;

fn main() {
    print_header("Figure 6: normalized algebraic connectivity, condMat, s = 1..16");
    let seed: u64 = arg("seed", 42);
    let max_s: u32 = arg("max-s", 16);
    let h = Profile::CondMat.generate(seed);
    println!(
        "{} authors (vertices), {} papers (hyperedges), {} inclusions\n",
        h.num_vertices(),
        h.num_edges(),
        h.num_incidences()
    );

    let s_values: Vec<u32> = (1..=max_s).collect();
    let ens = ensemble_slinegraphs(&h, &s_values, &Strategy::default());

    let mut table = Table::new([
        "s",
        "|E(L_s)|",
        "largest comp",
        "norm. algebraic connectivity",
    ]);
    let mut series = Vec::new();
    for (s, edges) in &ens.per_s {
        let slg = SLineGraph::new_squeezed(*s, h.num_edges(), edges.clone());
        let comps = slg.connected_components();
        let largest = comps.first().map(|c| c.len()).unwrap_or(0);
        let lambda = slg.algebraic_connectivity();
        series.push((*s, lambda));
        table.row([
            s.to_string(),
            edges.len().to_string(),
            largest.to_string(),
            format!("{lambda:.4}"),
        ]);
    }
    table.print();

    // Shape check mirroring the paper's reading of Figure 6.
    let mid: f64 = series
        .iter()
        .filter(|&&(s, _)| (4..=12).contains(&s))
        .map(|&(_, l)| l)
        .fold(0.0, f64::max);
    let high: f64 = series
        .iter()
        .filter(|&&(s, _)| s >= 13)
        .map(|&(_, l)| l)
        .fold(0.0, f64::max);
    println!(
        "\nmid-s (4..12) peak connectivity {mid:.3} vs high-s (13+) peak {high:.3} — {}",
        if high > 2.0 * mid {
            "sharp rise at s = 13+, matching the paper"
        } else {
            "WARNING: expected a sharp rise at s = 13+"
        }
    );
}
