//! Summary statistics and histograms for workload characterization.
//!
//! The paper characterizes inputs by mean/max degree (Table IV) and
//! per-thread work distribution (Figure 10); [`Summary`] and
//! [`log_histogram`] produce those numbers.

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value (0.0 when empty).
    pub min: f64,
    /// Maximum value (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Population standard deviation (0.0 when empty).
    pub stddev: f64,
    /// Sum of all samples.
    pub sum: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sumsq += v * v;
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        if count == 0 {
            return Self {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                stddev: 0.0,
                sum: 0.0,
            };
        }
        let mean = sum / count as f64;
        let var = (sumsq / count as f64 - mean * mean).max(0.0);
        Self {
            count,
            min,
            max,
            mean,
            stddev: var.sqrt(),
            sum,
        }
    }

    /// Computes summary statistics over integer counts.
    pub fn of_counts<'a>(values: impl IntoIterator<Item = &'a usize>) -> Self {
        Self::of(values.into_iter().map(|&v| v as f64))
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    ///
    /// Used as the imbalance score for per-thread workload distributions:
    /// perfectly balanced work has CV = 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// Max-to-mean ratio, another standard load-imbalance metric.
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max / self.mean
        }
    }
}

/// Percentile of a sample (nearest-rank on a sorted copy). `p` in `[0,100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    // total_cmp keeps a NaN sample from panicking the sort; NaNs order
    // above +∞, so they only surface at p = 100.
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Buckets `values` into power-of-two bins: bin `i` counts values `v` with
/// `2^i <= v < 2^(i+1)`; bin 0 also includes 0 and 1.
///
/// This is the standard way to display skewed degree distributions.
pub fn log_histogram(values: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut bins: Vec<usize> = Vec::new();
    for v in values {
        let bin = if v <= 1 {
            0
        } else {
            (usize::BITS - 1 - v.leading_zeros()) as usize
        };
        if bin >= bins.len() {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    bins
}

/// Geometric mean of strictly positive values; 0.0 when empty.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.sum, 10.0);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of([7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn cv_and_imbalance() {
        let balanced = Summary::of([5.0, 5.0, 5.0, 5.0]);
        assert_eq!(balanced.cv(), 0.0);
        assert_eq!(balanced.imbalance(), 1.0);

        let skewed = Summary::of([1.0, 1.0, 1.0, 9.0]);
        assert!(skewed.cv() > 1.0);
        assert_eq!(skewed.imbalance(), 3.0);
    }

    #[test]
    fn counts_helper() {
        let counts = [1usize, 2, 3];
        let s = Summary::of_counts(counts.iter());
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_tolerates_nan() {
        // Regression: the sort used partial_cmp().unwrap() and panicked.
        let v = [2.0, f64::NAN, 1.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert!(percentile(&v, 100.0).is_nan(), "NaN sorts above +inf");
    }

    #[test]
    fn log_histogram_bins() {
        // 0,1 -> bin 0; 2,3 -> bin 1; 4..7 -> bin 2; 8..15 -> bin 3
        let h = log_histogram([0usize, 1, 2, 3, 4, 7, 8, 15]);
        assert_eq!(h, vec![2, 2, 2, 2]);
    }

    #[test]
    fn log_histogram_empty() {
        assert!(log_histogram(std::iter::empty()).is_empty());
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
