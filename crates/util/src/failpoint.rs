//! Deterministic fault injection at I/O seams (debug builds only).
//!
//! Production code calls [`check("site")`](check) at its I/O seams —
//! socket reads/writes, dataset file loads, cache inserts. In release
//! builds the call is an inline `None` the optimizer deletes. In debug
//! builds (the builds `cargo test` runs) an armed registry decides,
//! deterministically from a seed, whether that particular hit of that
//! particular site injects a fault — so a chaos test can replay the
//! exact same fault schedule from the same seed.
//!
//! Arming:
//!
//! * programmatic — [`arm("socket.write=err@300", 42)`](arm) from a
//!   test, [`disarm`] to clear;
//! * environment — `HYPERLINE_FAILPOINTS="site=mode@permille,..."`
//!   plus optional `HYPERLINE_FAILPOINT_SEED=n`, read once on first
//!   check, so a whole server binary can run under a fault schedule
//!   without code changes.
//!
//! Spec grammar: `site=mode@permille` entries joined by commas, where
//! `mode` is `err` (the seam returns an injected `io::Error`) or
//! `short` (a write seam writes only half the buffer), and `permille`
//! (0..=1000, default 1000) is the per-hit firing probability. The
//! decision for hit *n* of a site mixes `seed`, the site name hash, and
//! `n` through SplitMix64 — independent of thread timing.
//!
//! Every fired injection increments a per-site counter; tests assert
//! faults actually landed via [`fired`]/[`total_fired`], and the server
//! exposes [`total_fired`] under `/metrics` (`faults.injected`) so no
//! injected fault can disappear silently.

/// What an armed failpoint injects at a seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The seam should fail with an injected I/O error.
    Err,
    /// A write seam should perform a short write (half the buffer).
    Short,
}

#[cfg(debug_assertions)]
mod imp {
    use super::Fault;
    use crate::fxhash::FxHashMap;
    use std::sync::{Mutex, Once};

    struct Site {
        mode: Fault,
        permille: u32,
        hits: u64,
        fired: u64,
    }

    struct Registry {
        seed: u64,
        sites: FxHashMap<String, Site>,
    }

    static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
    static ENV_INIT: Once = Once::new();

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn site_hash(site: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::fxhash::FxHasher::default();
        site.hash(&mut h);
        h.finish()
    }

    fn parse_spec(spec: &str) -> Result<FxHashMap<String, Site>, String> {
        let mut sites = FxHashMap::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (site, rest) = entry.split_once('=').ok_or_else(|| {
                format!("failpoint entry `{entry}`: expected site=mode[@permille]")
            })?;
            let (mode_str, permille) = match rest.split_once('@') {
                Some((m, p)) => {
                    let p: u32 = p
                        .parse()
                        .map_err(|_| format!("failpoint `{site}`: bad permille `{p}`"))?;
                    if p > 1000 {
                        return Err(format!("failpoint `{site}`: permille {p} > 1000"));
                    }
                    (m, p)
                }
                None => (rest, 1000),
            };
            let mode = match mode_str {
                "err" => Fault::Err,
                "short" => Fault::Short,
                other => return Err(format!("failpoint `{site}`: unknown mode `{other}`")),
            };
            // A site can carry only one schedule; silently letting the
            // last entry win would disarm the first without a trace.
            if sites
                .insert(
                    site.to_string(),
                    Site {
                        mode,
                        permille,
                        hits: 0,
                        fired: 0,
                    },
                )
                .is_some()
            {
                return Err(format!("failpoint `{site}`: duplicate entry"));
            }
        }
        Ok(sites)
    }

    /// Parses and installs a fault schedule (see module docs for the
    /// spec grammar), replacing any previous one.
    pub fn arm(spec: &str, seed: u64) -> Result<(), String> {
        let sites = parse_spec(spec)?;
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        *reg = Some(Registry { seed, sites });
        Ok(())
    }

    /// Clears the registry; every subsequent check is a fast no-op.
    pub fn disarm() {
        *REGISTRY.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    fn env_init() {
        ENV_INIT.call_once(|| {
            if let Ok(spec) = std::env::var("HYPERLINE_FAILPOINTS") {
                let seed = std::env::var("HYPERLINE_FAILPOINT_SEED")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                // A bad env spec must not take the process down; it
                // just stays disarmed.
                let _ = arm(&spec, seed);
            }
        });
    }

    /// Consults the registry for one hit of `site`; `Some` means the
    /// caller must inject the returned fault.
    pub fn check(site: &str) -> Option<Fault> {
        env_init();
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let reg = reg.as_mut()?;
        let seed = reg.seed;
        let s = reg.sites.get_mut(site)?;
        let hit = s.hits;
        s.hits += 1;
        let roll = splitmix64(seed ^ site_hash(site) ^ hit) % 1000;
        if roll < s.permille as u64 {
            s.fired += 1;
            Some(s.mode)
        } else {
            None
        }
    }

    /// Injections fired at `site` since arming.
    pub fn fired(site: &str) -> u64 {
        let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        reg.as_ref()
            .and_then(|r| r.sites.get(site))
            .map_or(0, |s| s.fired)
    }

    /// Injections fired across all sites since arming.
    pub fn total_fired() -> u64 {
        let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        reg.as_ref()
            .map_or(0, |r| r.sites.values().map(|s| s.fired).sum())
    }
}

#[cfg(debug_assertions)]
pub use imp::{arm, check, disarm, fired, total_fired};

#[cfg(not(debug_assertions))]
mod imp_release {
    use super::Fault;

    /// Release builds: arming is accepted but inert.
    pub fn arm(_spec: &str, _seed: u64) -> Result<(), String> {
        Ok(())
    }

    /// Release builds: nothing to clear.
    pub fn disarm() {}

    /// Release builds: never injects — inlines to `None`.
    #[inline(always)]
    pub fn check(_site: &str) -> Option<Fault> {
        None
    }

    /// Release builds: always zero.
    pub fn fired(_site: &str) -> u64 {
        0
    }

    /// Release builds: always zero.
    pub fn total_fired() -> u64 {
        0
    }
}

#[cfg(not(debug_assertions))]
pub use imp_release::{arm, check, disarm, fired, total_fired};

/// Convenience: the injected `io::Error` for a [`Fault::Err`] at a
/// socket-like seam. A distinct message so telemetry and tests can tell
/// injected faults from organic ones.
pub fn io_error(site: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        format!("injected fault at {site}"),
    )
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    // The registry is process-global, so these tests run serially under
    // one lock to avoid arming races with each other.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn unarmed_checks_are_free() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        disarm();
        assert_eq!(check("socket.write"), None);
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn armed_site_fires_deterministically() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        arm("socket.write=err@1000", 7).unwrap();
        assert_eq!(check("socket.write"), Some(Fault::Err));
        assert_eq!(check("socket.read"), None, "unarmed site never fires");
        assert_eq!(fired("socket.write"), 1);
        assert_eq!(total_fired(), 1);

        // Same seed -> identical decision sequence.
        arm("socket.write=err@300", 42).unwrap();
        let a: Vec<bool> = (0..64).map(|_| check("socket.write").is_some()).collect();
        arm("socket.write=err@300", 42).unwrap();
        let b: Vec<bool> = (0..64).map(|_| check("socket.write").is_some()).collect();
        assert_eq!(a, b, "seeded schedule must replay");
        assert!(a.iter().any(|&x| x), "300 permille over 64 hits fires");
        assert!(!a.iter().all(|&x| x), "300 permille is not always");

        // Different seed -> (almost surely) different schedule.
        arm("socket.write=err@300", 43).unwrap();
        let c: Vec<bool> = (0..64).map(|_| check("socket.write").is_some()).collect();
        assert_ne!(a, c, "seed must matter");
        disarm();
    }

    #[test]
    fn spec_errors_are_reported() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        assert!(arm("nonsense", 0).is_err());
        assert!(arm("site=bogus", 0).is_err());
        assert!(arm("site=err@1001", 0).is_err());
        assert!(arm("site=err@notanum", 0).is_err());
        disarm();
    }

    #[test]
    fn short_mode_parses() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        arm("gzip.write=short", 1).unwrap();
        assert_eq!(check("gzip.write"), Some(Fault::Short));
        disarm();
    }
}
