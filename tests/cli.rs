//! Integration tests for the `hyperline` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hyperline"))
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hyperline-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_paper_example() -> PathBuf {
    let path = temp_file("paper.hgr");
    std::fs::write(&path, "0 1 2\n1 2 3\n0 1 2 3 4\n4 5\n").unwrap();
    path
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn stats_reports_shape() {
    let path = write_paper_example();
    let out = cli().arg("stats").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vertices:            6"));
    assert!(stdout.contains("hyperedges:          4"));
    assert!(stdout.contains("incidences:          13"));
    assert!(stdout.contains("not simple"));
}

#[test]
fn slg_emits_edge_list() {
    let path = write_paper_example();
    let out = cli().arg("slg").arg(&path).arg("--s=2").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines, vec!["0 1", "0 2", "1 2"]);
}

#[test]
fn slg_writes_output_file() {
    let path = write_paper_example();
    let out_path = temp_file("s3.edges");
    let out = cli()
        .arg("slg")
        .arg(&path)
        .arg("--s=3")
        .arg(format!("--out={}", out_path.display()))
        .output()
        .unwrap();
    assert!(out.status.success());
    let content = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(content, "0 2\n1 2\n");
}

#[test]
fn components_lists_sets() {
    let path = write_paper_example();
    let out = cli()
        .arg("components")
        .arg(&path)
        .arg("--s=2")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 2-connected component(s):"));
    assert!(stdout.contains("[0, 1, 2]"));
}

#[test]
fn sweep_counts_match_figure2() {
    let path = write_paper_example();
    let out = cli()
        .arg("sweep")
        .arg(&path)
        .arg("--max-s=4")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = stdout.lines().collect();
    assert_eq!(rows, vec!["1\t4", "2\t3", "3\t2", "4\t0"]);
}

#[test]
fn sclique_flag_analyzes_dual() {
    let path = write_paper_example();
    let out = cli()
        .arg("sweep")
        .arg(&path)
        .arg("--max-s=3")
        .arg("--sclique")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // s-clique counts of the paper example: 11, 5, 1.
    assert_eq!(
        stdout.lines().collect::<Vec<_>>(),
        vec!["1\t11", "2\t5", "3\t1"]
    );
}

#[test]
fn gen_roundtrips_through_stats() {
    let out_path = temp_file("lesmis.hgr");
    let out = cli()
        .arg("gen")
        .arg("lesMis")
        .arg(format!("--out={}", out_path.display()))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cli().arg("stats").arg(&out_path).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("hyperedges:          400"));
}

#[test]
fn unknown_command_and_missing_file_fail() {
    let out = cli().arg("frobnicate").arg("x").output().unwrap();
    assert!(!out.status.success());
    let out = cli()
        .arg("stats")
        .arg("/nonexistent/file.hgr")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn draw_emits_dot() {
    let path = write_paper_example();
    let out = cli().arg("draw").arg(&path).arg("--s=2").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("graph {"));
    // s = 2 line graph is the triangle on hyperedges 0,1,2 with weights 2,3,3.
    assert!(stdout.contains("n0 -- n1"));
    assert!(stdout.contains("label=\"3\""));
}

#[test]
fn pairs_format_accepted() {
    let path = temp_file("pairs.txt");
    std::fs::write(&path, "0 0\n0 1\n1 1\n1 2\n").unwrap();
    let out = cli()
        .arg("stats")
        .arg(&path)
        .arg("--pairs")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hyperedges:          2"));
    assert!(stdout.contains("vertices:            3"));
}
