//! Server smoke benchmark: cold vs warm latency of the cache-backed
//! endpoints plus bytes-on-wire of the streamed edge-list path,
//! recorded to `BENCH_server.json`.
//!
//! Starts a real `hyperline-server` on an ephemeral port, loads a
//! generator profile, and measures — over raw TCP, like a client —
//! the cold (first, cache-miss) and warm (repeated, metric-tier hit)
//! latencies of `/sweep?max_s=8` and `/betweenness?s=2`, plus a warm
//! `/slg` artifact-tier read. A second section fetches the **full**
//! (un-`limit`ed) edge list cold and warm, with and without
//! `Accept-Encoding: gzip`, recording body bytes on the wire and the
//! peak-RSS proxy of each path: the streamed response renders through
//! fixed-size writer buffers, versus the body-sized buffer the old
//! render-then-send path would have allocated. A concurrency section
//! parks 100/1k/10k open keep-alive sockets (capped by the fd limit)
//! against the evented core and records request p50/p99 at each tier.
//! The JSON report is the bench trajectory's record of the cache +
//! transport behavior; `scripts/check.sh` runs this after the test
//! suite.
//!
//! `cargo run -p hyperline-bench --release --bin server_smoke`
//! Options: `--profile=genomics --seed=42 --reps=9 --out=BENCH_server.json`

use hyperline_bench::{arg, flag, print_header};
use hyperline_hypergraph::Hypergraph;
use hyperline_server::json::Json;
use hyperline_server::{gzip, http, DatasetSource, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One GET with optional extra headers; returns the raw response bytes.
fn get_raw(addr: SocketAddr, target: &str, extra_headers: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: bench\r\n{extra_headers}connection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    raw
}

/// One `Connection: close` GET; returns `(status, body)` with chunked
/// bodies reassembled.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = get_raw(addr, target, "");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let body = if head
        .lines()
        .any(|l| l.eq_ignore_ascii_case("transfer-encoding: chunked"))
    {
        String::from_utf8(dechunk(body.as_bytes())).expect("UTF-8 chunked body")
    } else {
        body.to_string()
    };
    (status, body)
}

/// Reassembles a chunked body (shared strict helper, unwrapped).
fn dechunk(body: &[u8]) -> Vec<u8> {
    hyperline_server::http::dechunk(body).expect("well-formed chunked body")
}

/// Fault-tolerant GET for the overload burst: a shed connection may be
/// closed (or reset) before the request bytes are even read, and that
/// is the behavior under test, not an error.
fn try_get_status(addr: SocketAddr, target: &str) -> std::io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    text.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))
}

fn percentile(sorted_micros: &[f64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[idx]
}

/// Queue-saturation and deadline-expiry behavior, measured against a
/// deliberately tiny second server (2 workers, queue depth 4, 100 ms
/// request deadline) so the main measurements stay undisturbed:
///
/// * a 64-connection burst of *distinct* betweenness keys (every
///   request computes; nothing coalesces) — how much is shed with 503,
///   and the client-side p99 of what completes under saturation;
/// * sequential requests against a star hypergraph whose `L_1` is far
///   beyond the deadline budget — how promptly expiry turns into 504.
fn overload_section() -> Json {
    let threads = 2usize;
    let queue_depth = 4usize;
    let deadline = Duration::from_millis(100);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        cache_mb: 64,
        queue_depth,
        read_timeout: Duration::from_secs(5),
        request_deadline: Some(deadline),
        ..ServerConfig::default()
    })
    .expect("bind overload server");
    server
        .registry()
        .load_profile("lesMis", 42, None)
        .expect("load overload profile");
    // Star: 3000 hyperedges sharing vertex 0, so L_1 is the complete
    // graph (~4.5M line edges) — reliably past any 100 ms budget.
    let lists: Vec<Vec<u32>> = (0..3000u32)
        .map(|i| vec![0, 2 * i + 1, 2 * i + 2])
        .collect();
    server.registry().insert(
        "star",
        Hypergraph::from_edge_lists(&lists, 6001),
        DatasetSource::Inline,
    );
    let handle = server.spawn();
    let addr = handle.addr();

    let connections = 64usize;
    let outcomes: Vec<(Option<u16>, f64)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..connections)
            .map(|i| {
                scope.spawn(move || {
                    let started = Instant::now();
                    // samples=i+1 makes every key distinct: single-flight
                    // cannot coalesce the burst away.
                    let status = try_get_status(
                        addr,
                        &format!("/datasets/lesMis/betweenness?s=2&samples={}", i + 1),
                    )
                    .ok();
                    (status, started.elapsed().as_secs_f64() * 1e6)
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|c| c.join().expect("overload client"))
            .collect()
    });
    let count = |code: u16| outcomes.iter().filter(|(s, _)| *s == Some(code)).count();
    let (completed, shed, expired) = (count(200), count(503), count(504));
    let transport_errors = outcomes.iter().filter(|(s, _)| s.is_none()).count();
    let mut completed_micros: Vec<f64> = outcomes
        .iter()
        .filter(|(s, _)| *s == Some(200))
        .map(|&(_, micros)| micros)
        .collect();
    completed_micros.sort_by(|a, b| a.total_cmp(b));

    let expiry_reps = 5usize;
    let mut expiry_micros = Vec::with_capacity(expiry_reps);
    let mut expiry_504s = 0usize;
    for _ in 0..expiry_reps {
        let started = Instant::now();
        if matches!(try_get_status(addr, "/datasets/star/slg?s=1"), Ok(504)) {
            expiry_504s += 1;
        }
        expiry_micros.push(started.elapsed().as_secs_f64() * 1e6);
    }
    expiry_micros.sort_by(|a, b| a.total_cmp(b));
    let expiry_median = percentile(&expiry_micros, 0.5);
    handle.shutdown();

    println!(
        "overload       {connections} conns -> {completed}x200 {shed}x503 {expired}x504 \
         ({transport_errors} io)   completed p99 {:.0}us   504 median {:.0}us (budget {}ms)",
        percentile(&completed_micros, 0.99),
        expiry_median,
        deadline.as_millis(),
    );
    Json::obj()
        .set("threads", threads)
        .set("queue_depth", queue_depth)
        .set("connections", connections)
        .set("completed_200", completed)
        .set("shed_503", shed)
        .set("expired_504", expired)
        .set("transport_errors", transport_errors)
        .set("shed_rate", shed as f64 / connections as f64)
        .set("completed_p50_micros", percentile(&completed_micros, 0.5))
        .set("completed_p99_micros", percentile(&completed_micros, 0.99))
        .set(
            "deadline",
            Json::obj()
                .set("deadline_ms", deadline.as_millis() as u64)
                .set("requests", expiry_reps)
                .set("expired_504", expiry_504s)
                .set("latency_micros_median", expiry_median)
                .set(
                    "overshoot_micros_median",
                    expiry_median - deadline.as_secs_f64() * 1e6,
                ),
        )
}

/// Soft fd limit from `/proc/self/limits` (`Max open files`).
fn read_fd_limit() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Reads one keep-alive response off `stream` (content-length framed,
/// which is what `/healthz` answers).
fn read_keep_alive_response(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).expect("keep-alive read");
        assert!(n > 0, "connection closed mid-response");
        raw.extend_from_slice(&buf[..n]);
        let text = String::from_utf8_lossy(&raw);
        if let Some((head, body)) = text.split_once("\r\n\r\n") {
            let len = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse::<usize>().ok())?
                })
                .expect("content-length framing");
            if body.len() >= len {
                return text.into_owned();
            }
        }
    }
}

/// Concurrent-connections section: the evented core's headline claim.
/// Parks 100 / 1k / 10k open keep-alive sockets (capped by the fd
/// limit — each in-process client costs three fds: the client end, the
/// server socket, and the connection tracker's dup) and measures
/// request p50/p99 with all of them open. Idle sockets cost the loop
/// nothing but a timer entry, so latency should stay flat across tiers.
fn concurrency_section() -> Json {
    let fd_limit = read_fd_limit().unwrap_or(1024);
    let max_open = (fd_limit.saturating_sub(512) / 3).max(64);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        queue_depth: 256,
        // Generous idle budget: parked sockets must survive the slower
        // tiers' setup, not be reaped as idle keep-alives.
        read_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind concurrency server");
    let handle = server.spawn();
    let addr = handle.addr();
    let gauge = || {
        handle
            .state()
            .metrics
            .event_loop_connections
            .load(std::sync::atomic::Ordering::Relaxed)
    };

    let mut tiers = Vec::new();
    let mut max_sustained = 0i64;
    let mut capped = false;
    for target in [100usize, 1000, 10000] {
        let open = target.min(max_open);
        if open < target {
            capped = true;
            println!("concurrency: tier {target} capped to {open} by fd limit {fd_limit}");
        }
        let mut parked: Vec<TcpStream> = Vec::with_capacity(open);
        for _ in 0..open {
            let stream = TcpStream::connect(addr).expect("connect parked socket");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            parked.push(stream);
        }
        // The loop owns a connection once it is epoll-registered; wait
        // for the gauge to account for every parked socket.
        let deadline = Instant::now() + Duration::from_secs(20);
        while gauge() < open as i64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        max_sustained = max_sustained.max(gauge());
        // p50/p99 of sequential probes round-robined over a sample of
        // the parked (live, keep-alive) sockets.
        let sample = parked.len().min(50);
        let probes = 200usize;
        let mut micros = Vec::with_capacity(probes);
        for i in 0..probes {
            let stream = &mut parked[i % sample];
            let started = Instant::now();
            write!(stream, "GET /healthz HTTP/1.1\r\nhost: bench\r\n\r\n").expect("probe write");
            let response = read_keep_alive_response(stream);
            assert!(response.starts_with("HTTP/1.1 200"), "{response}");
            micros.push(started.elapsed().as_secs_f64() * 1e6);
        }
        micros.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (percentile(&micros, 0.5), percentile(&micros, 0.99));
        println!("concurrency    {open:>6} open sockets   p50 {p50:>7.0} us   p99 {p99:>7.0} us");
        tiers.push(
            Json::obj()
                .set("target", target)
                .set("connections", open)
                .set("p50_micros", p50)
                .set("p99_micros", p99),
        );
        drop(parked);
        // Let the loop reap the mass close before the next tier piles on.
        let deadline = Instant::now() + Duration::from_secs(20);
        while gauge() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    handle.shutdown();
    println!("concurrency: sustained {max_sustained} connections");
    Json::obj()
        .set("fd_limit", fd_limit)
        .set("capped", capped)
        .set("max_sustained", max_sustained)
        .set("tiers", Json::Arr(tiers))
}

/// Cold latency + median warm latency (of `reps` repeats) for `target`,
/// asserting 200s and byte-identical repeated bodies along the way
/// (modulo the `/slg` cache-outcome tag, which legitimately flips from
/// `miss` to `hit`).
fn measure(addr: SocketAddr, target: &str, reps: usize) -> (f64, f64) {
    fn normalize(body: &str) -> String {
        body.replace("\"cache\":\"miss\"", "\"cache\":\"hit\"")
            .replace("\"cache\":\"coalesced\"", "\"cache\":\"hit\"")
    }
    let started = Instant::now();
    let (status, cold_body) = get(addr, target);
    let cold = started.elapsed().as_secs_f64() * 1e6;
    assert_eq!(status, 200, "{target}: {cold_body}");
    let mut warm: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let started = Instant::now();
            let (status, body) = get(addr, target);
            assert_eq!(status, 200);
            assert_eq!(
                normalize(&body),
                normalize(&cold_body),
                "{target}: response diverged"
            );
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    warm.sort_by(|a, b| a.total_cmp(b));
    (cold, warm[warm.len() / 2])
}

fn endpoint_report(
    name: &str,
    cold_micros: f64,
    warm_micros: f64,
    metrics: &Json,
) -> hyperline_server::json::Json {
    // Alongside the client-side round-trips, read the server's own
    // latency histogram for the route: p50/p99 of every request it
    // handled, measured server-side (parse to response, no socket).
    let (p50, p99) = route_quantiles(metrics, name);
    println!(
        "{name:<14} cold {:>10.0} us   warm {:>8.0} us   speedup {:>8.1}x   server p50 {p50:>6} us  p99 {p99:>6} us",
        cold_micros,
        warm_micros,
        cold_micros / warm_micros
    );
    Json::obj()
        .set("endpoint", name)
        .set("cold_micros", cold_micros)
        .set("warm_micros_median", warm_micros)
        .set("speedup", cold_micros / warm_micros)
        .set("server_p50_micros", p50)
        .set("server_p99_micros", p99)
}

/// `(p50, p99)` of a route's server-side latency histogram in a parsed
/// `/metrics` body.
fn route_quantiles(metrics: &Json, route: &str) -> (i64, i64) {
    let hist = metrics
        .get("endpoints")
        .and_then(|e| e.get(route))
        .and_then(|r| r.get("latency"))
        .unwrap_or_else(|| panic!("no latency histogram for route {route}"));
    let q = |key: &str| hist.get(key).and_then(Json::as_int).unwrap_or(0) as i64;
    (q("p50"), q("p99"))
}

/// Numeric field lookup in a parsed JSON object.
fn num(obj: &Json, key: &str) -> Option<f64> {
    match obj.get(key)? {
        Json::Int(i) => Some(*i as f64),
        Json::Float(x) => Some(*x),
        _ => None,
    }
}

/// Every dotted key path down to the leaves of a JSON object tree —
/// the `/metrics` schema, independent of the values.
fn schema_paths(json: &Json, prefix: &str, out: &mut Vec<String>) {
    match json.entries() {
        Some(entries) if !entries.is_empty() => {
            for (key, value) in entries {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                schema_paths(value, &path, out);
            }
        }
        _ => out.push(prefix.to_string()),
    }
}

/// Asserts the `/metrics` JSON key set matches the checked-in snapshot
/// (`scripts/metrics_schema.txt`): dashboards and scrapers key on these
/// paths, so the schema only changes deliberately, with
/// `--update-schema` regenerating the snapshot. Missing snapshot files
/// bootstrap instead of failing (first run, or odd working directory).
fn check_metrics_schema(metrics: &Json, snapshot_path: &str, update: bool) {
    let mut paths = Vec::new();
    schema_paths(metrics, "", &mut paths);
    paths.sort_unstable();
    let current = paths.join("\n") + "\n";
    match std::fs::read_to_string(snapshot_path) {
        Ok(expected) if expected == current => {
            println!(
                "metrics schema: {} key paths match {snapshot_path}",
                paths.len()
            );
        }
        Ok(expected) => {
            if update {
                std::fs::write(snapshot_path, &current).expect("write schema snapshot");
                println!("metrics schema: updated {snapshot_path}");
                return;
            }
            let expected: Vec<&str> = expected.lines().collect();
            let current: Vec<&str> = current.lines().collect();
            for path in expected.iter().filter(|p| !current.contains(p)) {
                eprintln!("  removed: {path}");
            }
            for path in current.iter().filter(|p| !expected.contains(p)) {
                eprintln!("  added:   {path}");
            }
            panic!(
                "/metrics key set diverged from {snapshot_path}; \
                 rerun with --update-schema if the change is deliberate"
            );
        }
        Err(_) => {
            std::fs::write(snapshot_path, &current).expect("write schema snapshot");
            println!("metrics schema: bootstrapped {snapshot_path}");
        }
    }
}

fn main() {
    print_header("server smoke: cold vs warm latency of the two-tier cache");
    let profile: String = arg("profile", "genomics".to_string());
    let seed: u64 = arg("seed", 42);
    let reps: usize = arg("reps", 9);
    let out: String = arg("out", "BENCH_server.json".to_string());

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let name = server
        .registry()
        .load_profile(&profile, seed, None)
        .expect("load profile");
    let handle = server.spawn();
    let addr = handle.addr();

    // `/slg` first: the sweep below would otherwise pre-populate its
    // artifact and hide the artifact-tier's cold cost.
    let (slg_cold, slg_warm) = measure(addr, &format!("/datasets/{name}/slg?s=2&limit=16"), reps);
    let (sweep_cold, sweep_warm) = measure(addr, &format!("/datasets/{name}/sweep?max_s=8"), reps);
    let (bc_cold, bc_warm) = measure(addr, &format!("/datasets/{name}/betweenness?s=2"), reps);

    // Wire section: the full (un-`limit`ed) edge list, cold and warm,
    // identity and gzip, on a second dataset instance so the cold
    // request genuinely builds its artifact.
    let wire_name = handle
        .state()
        .registry
        .load_profile(&profile, seed + 1, Some("wire"))
        .expect("load wire profile");
    let wire_target = format!("/datasets/{wire_name}/slg?s=2&limit=1000000000");
    let split_body = |raw: &[u8]| -> Vec<u8> {
        let boundary = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("head/body boundary");
        dechunk(&raw[boundary + 4..])
    };
    let started = Instant::now();
    let _ = get_raw(addr, &wire_target, "");
    let wire_cold = started.elapsed().as_secs_f64() * 1e6;
    let started = Instant::now();
    let warm_raw = get_raw(addr, &wire_target, "");
    let wire_warm = started.elapsed().as_secs_f64() * 1e6;
    let identity_body = split_body(&warm_raw);
    let started = Instant::now();
    let gzip_raw = get_raw(addr, &wire_target, "accept-encoding: gzip\r\n");
    let wire_warm_gzip = started.elapsed().as_secs_f64() * 1e6;
    let gzip_body = split_body(&gzip_raw);
    let decoded = gzip::decode(&gzip_body).expect("valid gzip body");
    assert_eq!(
        decoded, identity_body,
        "gzip body must round-trip byte-identical"
    );
    let gzip_ratio = identity_body.len() as f64 / gzip_body.len() as f64;
    // Encoder effort comparison on the same body: default (archival)
    // vs fast (what streamed responses use). Medians of 5 encodes.
    let encode = |effort: gzip::Effort| -> (f64, usize) {
        let mut times: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                let out = gzip::compress_with(&identity_body, effort);
                let secs = t.elapsed().as_secs_f64();
                std::hint::black_box(&out);
                secs
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        (
            times[times.len() / 2],
            gzip::compress_with(&identity_body, effort).len(),
        )
    };
    let (default_secs, default_bytes) = encode(gzip::Effort::Default);
    let (fast_secs, fast_bytes) = encode(gzip::Effort::Fast);
    let mbps = |secs: f64| identity_body.len() as f64 / secs / 1e6;
    let encode_speedup = default_secs / fast_secs;
    let ratio_loss_pct = (fast_bytes as f64 / default_bytes as f64 - 1.0) * 100.0;
    // Peak-RSS proxy of the response path: the streamed writer stack
    // buffers one chunk frame + one gzip block + its bit buffer, versus
    // the body-sized String the buffered path would allocate.
    let streamed_buffer_bytes = http::CHUNK_BYTES + gzip::BLOCK_BYTES + 4096;
    println!(
        "slg-full       cold {:>10.0} us   warm {:>8.0} us   gzip-warm {:>8.0} us",
        wire_cold, wire_warm, wire_warm_gzip
    );
    println!(
        "wire bytes     identity {:>9}   gzip {:>9}   ratio {:>6.2}x   body-buffer {} B (streamed) vs {} B (buffered)",
        identity_body.len(),
        gzip_body.len(),
        gzip_ratio,
        streamed_buffer_bytes,
        identity_body.len(),
    );
    println!(
        "gzip encode    default {:>7.1} MB/s ({} B)   fast {:>7.1} MB/s ({} B)   speedup {:.2}x   ratio loss {:+.1}%",
        mbps(default_secs),
        default_bytes,
        mbps(fast_secs),
        fast_bytes,
        encode_speedup,
        ratio_loss_pct,
    );

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics_json = Json::parse(&metrics).expect("/metrics body parses");
    check_metrics_schema(
        &metrics_json,
        &arg("schema", "scripts/metrics_schema.txt".to_string()),
        flag("update-schema"),
    );
    // The previous report, for the warn-only trajectory comparison.
    let previous = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| Json::parse(&t).ok());
    let endpoints = vec![
        endpoint_report("slg", slg_cold, slg_warm, &metrics_json),
        endpoint_report("sweep", sweep_cold, sweep_warm, &metrics_json),
        endpoint_report("betweenness", bc_cold, bc_warm, &metrics_json),
    ];
    // Warn-only: flag any endpoint whose latency regressed > 20% vs the
    // previous run (client round-trips and server-side quantiles alike).
    // Sub-50µs numbers are scheduler noise, not signal.
    let mut warnings = 0usize;
    if let Some(prev_endpoints) = previous
        .as_ref()
        .and_then(|p| p.get("endpoints"))
        .and_then(Json::as_array)
    {
        for entry in &endpoints {
            let endpoint = entry.get("endpoint").and_then(Json::as_str).unwrap();
            let Some(prev) = prev_endpoints
                .iter()
                .find(|p| p.get("endpoint").and_then(Json::as_str) == Some(endpoint))
            else {
                continue;
            };
            for field in [
                "cold_micros",
                "warm_micros_median",
                "server_p50_micros",
                "server_p99_micros",
            ] {
                let (Some(old), Some(new)) = (num(prev, field), num(entry, field)) else {
                    continue;
                };
                if old > 50.0 && new > old * 1.2 {
                    warnings += 1;
                    println!(
                        "  WARN {endpoint} {field}: {old:.0}us -> {new:.0}us (+{:.0}%)",
                        (new / old - 1.0) * 100.0
                    );
                }
            }
        }
    }
    let overload = overload_section();
    let concurrency = concurrency_section();
    let report = Json::obj()
        .set("profile", name.as_str())
        .set("seed", seed)
        .set("reps", reps)
        .set("endpoints", Json::Arr(endpoints))
        .set("overload", overload)
        .set("concurrency", concurrency)
        .set(
            "wire",
            Json::obj()
                .set("endpoint", "slg-full")
                .set("dataset", wire_name.as_str())
                .set("cold_micros", wire_cold)
                .set("warm_micros_identity", wire_warm)
                .set("warm_micros_gzip", wire_warm_gzip)
                .set("body_bytes_identity", identity_body.len())
                .set("body_bytes_gzip", gzip_body.len())
                .set("wire_bytes_identity_total", warm_raw.len())
                .set("wire_bytes_gzip_total", gzip_raw.len())
                .set("gzip_ratio", gzip_ratio)
                .set(
                    "gzip_encode",
                    Json::obj()
                        .set(
                            "default",
                            Json::obj()
                                .set("micros", default_secs * 1e6)
                                .set("bytes", default_bytes)
                                .set("mb_per_s", mbps(default_secs)),
                        )
                        .set(
                            "fast",
                            Json::obj()
                                .set("micros", fast_secs * 1e6)
                                .set("bytes", fast_bytes)
                                .set("mb_per_s", mbps(fast_secs)),
                        )
                        .set("speedup", encode_speedup)
                        .set("ratio_loss_pct", ratio_loss_pct),
                )
                .set("streamed", true)
                .set("peak_body_buffer_bytes_streamed", streamed_buffer_bytes)
                .set("peak_body_buffer_bytes_buffered", identity_body.len()),
        );
    std::fs::write(&out, report.render()).expect("write report");
    println!(
        "\nwrote {out}{}",
        if warnings > 0 {
            format!(" ({warnings} warn-only regressions vs previous run)")
        } else {
            String::new()
        }
    );
    // Surface the tier counters so a broken cache is visible in CI logs.
    if let Some(cache) = metrics
        .split("\"cache\":")
        .nth(1)
        .and_then(|rest| rest.split("},\"endpoints\"").next())
    {
        println!("cache tiers: {cache}}}");
    }
    handle.shutdown();
}
