//! Text I/O for hypergraphs.
//!
//! Two interchange formats are supported:
//!
//! * **Edge-list format** — one hyperedge per line, whitespace-separated
//!   vertex IDs. Lines beginning with `#` or `%` are comments. This matches
//!   the common format of curated hypergraph collections (e.g. the datasets
//!   of Shun's "Practical parallel hypergraph algorithms").
//! * **Bipartite-pair format** — one `edge vertex` incidence pair per line,
//!   the shape of KONECT bipartite graphs the paper loads Web/LiveJournal
//!   from.

use crate::hypergraph::Hypergraph;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising while parsing hypergraph files.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A token was not a valid vertex/edge ID.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A pair line did not have exactly two fields.
    BadPair {
        /// 1-based line number.
        line: usize,
    },
    /// The largest ID implies a dense ID space wildly disproportionate
    /// to the data (a handful of huge IDs would make the CSR/transpose
    /// allocation orders of magnitude larger than the file). Remap IDs
    /// densely before loading. This is the untrusted-load guard: a
    /// 20-byte file must not be able to OOM a server.
    IdSpaceTooLarge {
        /// The largest ID seen.
        max_id: u32,
        /// Number of incidence entries actually parsed.
        entries: usize,
    },
    /// An entry violated the declared ID space — surfaced from the
    /// checked CSR builders instead of panicking.
    OutOfRange(crate::csr::CsrOutOfRange),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::BadToken { line, token } => {
                write!(f, "line {line}: invalid ID token {token:?}")
            }
            ParseError::BadPair { line } => {
                write!(f, "line {line}: expected `edge vertex` pair")
            }
            ParseError::IdSpaceTooLarge { max_id, entries } => {
                write!(
                    f,
                    "ID space too large: max ID {max_id} with only {entries} entries; \
                     remap IDs densely before loading"
                )
            }
            ParseError::OutOfRange(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('#') || t.starts_with('%')
}

/// Guards the dense-ID-space assumption of the text loaders: the implied
/// space (`max ID + 1`) may not exceed the parsed entry count by more
/// than this factor (plus slack for small files). Allocations stay
/// proportional to input size even for adversarial files.
fn check_id_space(max_id: Option<u32>, entries: usize) -> Result<usize, ParseError> {
    let Some(max_id) = max_id else { return Ok(0) };
    let space = max_id as usize + 1;
    if space > 64 * entries + 65_536 {
        return Err(ParseError::IdSpaceTooLarge { max_id, entries });
    }
    Ok(space)
}

/// Reads the edge-list format from a reader. Vertex IDs may be arbitrary
/// `u32`s; the vertex count is `max ID + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let reader = BufReader::new(reader);
    let mut lists: Vec<Vec<u32>> = Vec::new();
    let mut max_vertex: Option<u32> = None;
    let mut entries = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut edge = Vec::new();
        for token in line.split_whitespace() {
            let v: u32 = token.parse().map_err(|_| ParseError::BadToken {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            max_vertex = Some(max_vertex.map_or(v, |m| m.max(v)));
            edge.push(v);
            entries += 1;
        }
        lists.push(edge);
    }
    let n = check_id_space(max_vertex, entries)?;
    Hypergraph::try_from_edge_lists(&lists, n).map_err(ParseError::OutOfRange)
}

/// Reads the bipartite-pair format (`edge vertex` per line) from a reader.
pub fn read_bipartite_pairs<R: Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let reader = BufReader::new(reader);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let (mut max_e, mut max_v): (Option<u32>, Option<u32>) = (None, None);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
            return Err(ParseError::BadPair { line: lineno + 1 });
        };
        let parse = |token: &str| -> Result<u32, ParseError> {
            token.parse().map_err(|_| ParseError::BadToken {
                line: lineno + 1,
                token: token.to_string(),
            })
        };
        let (e, v) = (parse(a)?, parse(b)?);
        max_e = Some(max_e.map_or(e, |m| m.max(e)));
        max_v = Some(max_v.map_or(v, |m| m.max(v)));
        pairs.push((e, v));
    }
    let m = check_id_space(max_e, pairs.len())?;
    let n = check_id_space(max_v, pairs.len())?;
    Hypergraph::try_from_incidence_pairs(&pairs, m, n).map_err(ParseError::OutOfRange)
}

/// Writes the edge-list format to a writer.
pub fn write_edge_list<W: Write>(h: &Hypergraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# hyperline edge list: {} edges, {} vertices",
        h.num_edges(),
        h.num_vertices()
    )?;
    for e in 0..h.num_edges() as u32 {
        let members = h.edge_vertices(e);
        for (i, v) in members.iter().enumerate() {
            if i > 0 {
                write!(w, " ")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a hypergraph from a file in edge-list format.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Hypergraph, ParseError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a hypergraph to a file in edge-list format.
pub fn save_edge_list(h: &Hypergraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_edge_list(h, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let h = Hypergraph::paper_example();
        let mut buf = Vec::new();
        write_edge_list(&h, &mut buf).unwrap();
        let h2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn edge_list_parses_comments_and_blank_lines() {
        let text = "# comment\n\n0 1 2\n% other comment\n2 3\n";
        let h = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.edge_vertices(1), &[2, 3]);
    }

    #[test]
    fn edge_list_bad_token() {
        let err = read_edge_list("0 x 2\n".as_bytes()).unwrap_err();
        match err {
            ParseError::BadToken { line, token } => {
                assert_eq!(line, 1);
                assert_eq!(token, "x");
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn bipartite_pairs_parse() {
        let text = "# edge vertex\n0 5\n0 6\n1 5\n2 7\n";
        let h = read_bipartite_pairs(text.as_bytes()).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 8);
        assert_eq!(h.edge_vertices(0), &[5, 6]);
        assert_eq!(h.vertex_edges(5), &[0, 1]);
    }

    #[test]
    fn bipartite_pairs_reject_arity() {
        assert!(matches!(
            read_bipartite_pairs("1 2 3\n".as_bytes()).unwrap_err(),
            ParseError::BadPair { line: 1 }
        ));
        assert!(matches!(
            read_bipartite_pairs("1\n".as_bytes()).unwrap_err(),
            ParseError::BadPair { line: 1 }
        ));
    }

    #[test]
    fn empty_input() {
        let h = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.num_vertices(), 0);
        let h = read_bipartite_pairs("# nothing\n".as_bytes()).unwrap();
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hyperline-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("example.hgr");
        let h = Hypergraph::paper_example();
        save_edge_list(&h, &path).unwrap();
        let h2 = load_edge_list(&path).unwrap();
        assert_eq!(h, h2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn huge_sparse_ids_rejected() {
        // A tiny file naming a ~4-billion ID must not force a 4-billion
        // slot allocation: the dense-space guard rejects it.
        let err = read_edge_list("0 4000000000\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ParseError::IdSpaceTooLarge {
                max_id: 4_000_000_000,
                entries: 2
            }
        ));
        assert!(err.to_string().contains("ID space too large"));
        let err = read_bipartite_pairs("4000000000 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::IdSpaceTooLarge { .. }));
        // Dense IDs of any absolute size stay loadable: the guard is
        // proportionality, not magnitude.
        let h = read_edge_list("0 1 2 3\n2 3\n".as_bytes()).unwrap();
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn error_display() {
        let e = ParseError::BadToken {
            line: 3,
            token: "zz".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = ParseError::BadPair { line: 9 };
        assert!(e.to_string().contains("line 9"));
    }
}
