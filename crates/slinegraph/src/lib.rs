//! Parallel computation of high-order (s-)line graphs of non-uniform
//! hypergraphs — the core contribution of the reproduced paper.
//!
//! Two hyperedges are *s-incident* when they share at least `s` vertices;
//! the **s-line graph** `L_s(H)` has the hyperedges as vertices and the
//! s-incident pairs as edges. This crate implements:
//!
//! * [`algorithms`] — the naive baseline, the HiPC'21 set-intersection
//!   algorithm (Algorithm 1) and the paper's hashmap-counting algorithm
//!   (Algorithm 2, zero set intersections);
//! * [`ensemble`] — Algorithm 3: all requested `s` values from one
//!   counting pass;
//! * [`sclique`] — the dual, vertex-centric s-clique graphs (the `s = 1`
//!   case is the clique expansion);
//! * [`spgemm_baseline`] — the SpGEMM + filtration comparator;
//! * [`partition`] / [`strategy`] / [`counter`] — the workload
//!   distribution, relabeling and accumulator design space the paper
//!   sweeps (Table III, Figures 7–10);
//! * [`framework`] — the five-stage end-to-end pipeline with per-stage
//!   timing (Table I);
//! * [`linegraph`] — the queryable [`SLineGraph`] with Stage-5 s-metrics
//!   (components, betweenness, s-distance, algebraic connectivity).
//!
//! ```
//! use hyperline_hypergraph::Hypergraph;
//! use hyperline_slinegraph::{algo2_slinegraph, Strategy};
//!
//! let h = Hypergraph::paper_example();
//! let r = algo2_slinegraph(&h, 2, &Strategy::default());
//! assert_eq!(r.edges, vec![(0, 1), (0, 2), (1, 2)]);
//! assert_eq!(r.stats.total().set_intersections, 0);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod counter;
pub mod ensemble;
pub mod framework;
pub mod linegraph;
pub mod partition;
pub mod sclique;
pub mod spgemm_baseline;
pub mod stats;
pub mod strategy;
pub mod walks;

pub use algorithms::{
    algo1_slinegraph, algo2_slinegraph, algo2_slinegraph_weighted, naive_slinegraph, OverlapResult,
};
pub use counter::CounterKind;
pub use ensemble::{edge_counts_over_s, ensemble_slinegraphs, EnsembleResult};
pub use framework::{build_slinegraphs_over_s, run_pipeline, PipelineConfig, PipelineRun};
pub use linegraph::SLineGraph;
pub use partition::Partition;
pub use sclique::{clique_expansion, sclique_edge_counts, sclique_graph};
pub use spgemm_baseline::{spgemm_slinegraph, SpgemmResult};
pub use stats::{AlgoStats, WorkerStats};
pub use strategy::{table3_grid, Algo1Heuristics, Algorithm, Strategy, TriangleSide};
