//! Integer-valued CSR sparse matrices.
//!
//! The SpGEMM baseline operates on Boolean incidence matrices with `u32`
//! accumulation (overlap counts never exceed the max edge size, far below
//! `u32::MAX`).

use hyperline_hypergraph::Csr;

/// A sparse matrix in CSR form with `u32` values and sorted column indices
/// within each row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<u32>,
}

impl CsrMatrix {
    /// Builds a matrix from raw CSR parts.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (offsets not monotone, lengths
    /// mismatched, columns out of range or unsorted within a row).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        offsets: Vec<usize>,
        cols: Vec<u32>,
        vals: Vec<u32>,
    ) -> Self {
        assert_eq!(offsets.len(), nrows + 1, "offsets length");
        assert_eq!(cols.len(), vals.len(), "cols/vals length");
        assert_eq!(*offsets.last().unwrap(), cols.len(), "final offset");
        for r in 0..nrows {
            assert!(offsets[r] <= offsets[r + 1], "offsets not monotone");
            let row = &cols[offsets[r]..offsets[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} columns not strictly sorted");
            }
            for &c in row {
                assert!((c as usize) < ncols, "column {c} out of range");
            }
        }
        Self {
            nrows,
            ncols,
            offsets,
            cols,
            vals,
        }
    }

    /// Boolean pattern matrix (all values 1) from a [`Csr`] adjacency.
    pub fn from_pattern(csr: &Csr) -> Self {
        Self {
            nrows: csr.num_rows(),
            ncols: csr.num_cols(),
            offsets: csr.offsets().to_vec(),
            cols: csr.targets().to_vec(),
            vals: vec![1; csr.num_entries()],
        }
    }

    /// Builds from `(row, col, val)` triplets; duplicates are summed.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(u32, u32, u32)]) -> Self {
        let mut sorted = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut offsets = vec![0usize; nrows + 1];
        let mut cols = Vec::with_capacity(sorted.len());
        let mut vals: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &sorted {
            assert!(
                (r as usize) < nrows && (c as usize) < ncols,
                "triplet out of range"
            );
            if prev == Some((r, c)) {
                *vals.last_mut().unwrap() += v;
                continue;
            }
            prev = Some((r, c));
            offsets[r as usize + 1] += 1;
            cols.push(c);
            vals.push(v);
        }
        for i in 0..nrows {
            offsets[i + 1] += offsets[i];
        }
        Self {
            nrows,
            ncols,
            offsets,
            cols,
            vals,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The sorted column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.cols[self.offsets[r]..self.offsets[r + 1]]
    }

    /// The values of row `r`, parallel to [`Self::row_cols`].
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[u32] {
        &self.vals[self.offsets[r]..self.offsets[r + 1]]
    }

    /// The value at `(r, c)`, or 0 if not stored.
    pub fn get(&self, r: usize, c: u32) -> u32 {
        match self.row_cols(r).binary_search(&c) {
            Ok(i) => self.row_vals(r)[i],
            Err(_) => 0,
        }
    }

    /// Iterates `(row, col, val)` over stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cols = vec![0u32; self.nnz()];
        let mut vals = vec![0u32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            for i in self.offsets[r]..self.offsets[r + 1] {
                let c = self.cols[i] as usize;
                cols[cursor[c]] = r as u32;
                vals[cursor[c]] = self.vals[i];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            offsets,
            cols,
            vals,
        }
    }

    /// Checks structural symmetry *and* value symmetry (requires square).
    pub fn is_symmetric(&self) -> bool {
        self.nrows == self.ncols && *self == self.transpose()
    }

    /// Memory footprint of the stored arrays in bytes (the paper's argument
    /// against SpGEMM is exactly this materialization cost).
    pub fn storage_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperline_hypergraph::Hypergraph;

    #[test]
    fn from_pattern_of_hypergraph() {
        let h = Hypergraph::paper_example();
        let a = CsrMatrix::from_pattern(h.edge_csr());
        assert_eq!(a.nrows(), 4);
        assert_eq!(a.ncols(), 6);
        assert_eq!(a.nnz(), 13);
        assert_eq!(a.get(0, 1), 1);
        assert_eq!(a.get(0, 5), 0);
    }

    #[test]
    fn triplets_sum_duplicates() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2), (0, 1, 3), (1, 0, 1)]);
        assert_eq!(m.get(0, 1), 5);
        assert_eq!(m.get(1, 0), 1);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn triplets_unordered_input() {
        let m = CsrMatrix::from_triplets(3, 3, &[(2, 0, 1), (0, 2, 4), (1, 1, 9)]);
        assert_eq!(m.get(0, 2), 4);
        assert_eq!(m.get(1, 1), 9);
        assert_eq!(m.get(2, 0), 1);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 4, &[(0, 3, 7), (1, 0, 2), (1, 2, 5)]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.get(3, 0), 7);
        assert_eq!(t.get(0, 1), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3), (1, 0, 3), (0, 0, 1)]);
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3)]);
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn iter_row_major() {
        let m = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1), (0, 1, 2)]);
        let items: Vec<_> = m.iter().collect();
        assert_eq!(items, vec![(0, 1, 2), (1, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "columns not strictly sorted")]
    fn from_parts_validates_sorting() {
        CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1, 1]);
    }

    #[test]
    fn storage_accounting() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1), (0, 1, 1)]);
        assert_eq!(m.storage_bytes(), 2 * 8 + 2 * 4 + 2 * 4);
    }
}
