//! Quickstart: the paper's running example, end to end.
//!
//! Builds the hypergraph of Figure 1 (vertices a..f, hyperedges
//! 1:{a,b,c}, 2:{b,c,d}, 3:{a,b,c,d,e}, 4:{e,f}), computes the s-line
//! graphs of Figure 2 for s = 1..4 with overlap weights, shows the dual /
//! toplexes, and runs the five-stage pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use hyperline::hypergraph::toplex;
use hyperline::prelude::*;

fn vertex_name(v: u32) -> char {
    (b'a' + v as u8) as char
}

fn main() {
    let h = Hypergraph::paper_example();
    println!(
        "Hypergraph H: {} vertices, {} hyperedges, {} incidences",
        h.num_vertices(),
        h.num_edges(),
        h.num_incidences()
    );
    for e in 0..h.num_edges() as u32 {
        let members: String = h.edge_vertices(e).iter().map(|&v| vertex_name(v)).collect();
        println!(
            "  edge {}: {{{}}}",
            e + 1,
            members
                .chars()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
    }

    // Figure 2: hyperedge s-line graphs for s = 1..4, with edge weights
    // (the overlap sizes drawn as line width in the paper).
    println!("\ns-line graphs L_s(H) (edge weight = |e_i ∩ e_j|):");
    for s in 1..=4u32 {
        let (edges, _) = algo2_slinegraph_weighted(&h, s, &Strategy::default());
        let rendered: Vec<String> = edges
            .iter()
            .map(|&(i, j, w)| format!("{}–{} (w={w})", i + 1, j + 1))
            .collect();
        println!("  s={s}: [{}]", rendered.join(", "));
    }

    // The dual hypergraph (Figure 1 right).
    let dual = h.dual();
    println!(
        "\nDual H*: {} vertices (old edges), {} hyperedges (old vertices)",
        dual.num_vertices(),
        dual.num_edges()
    );

    // Toplexes (Stage 2): edges 1 and 2 are subsets of edge 3.
    let t = toplex::toplexes(&h);
    let names: Vec<String> = t.toplex_ids.iter().map(|&e| (e + 1).to_string()).collect();
    println!(
        "Toplexes Ě: edges {{{}}} — H is {}simple",
        names.join(", "),
        if toplex::is_simple(&h) { "" } else { "not " }
    );

    // The clique expansion (2-section, Figure 3 right) via the dual.
    let cx = clique_expansion(&h, &Strategy::default());
    println!(
        "\n2-section H₂ has {} edges (clique expansion of H)",
        cx.edges.len()
    );

    // Full pipeline at s = 2 with stage timing.
    let run = run_pipeline(&h, &PipelineConfig::new(2));
    println!("\nPipeline at s=2:");
    print!("{}", run.times);
    println!(
        "2-connected components: {:?}",
        run.components
            .unwrap()
            .iter()
            .map(|c| c.iter().map(|&e| (e + 1).to_string()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );

    // s-distance: edges 1 and 4 are 1-connected through edge 3.
    let slg1 = run_pipeline(&h, &PipelineConfig::new(1)).line_graph;
    println!(
        "1-distance between edges 1 and 4: {:?}",
        slg1.s_distance(0, 3)
    );
}
