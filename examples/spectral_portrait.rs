//! A spectral/structural portrait of a hypergraph across s.
//!
//! Sweeps `s` over a compBoard-like membership network and reports, per
//! s-line graph: size, components, diameter, clustering, degeneracy
//! (max k-core) and normalized algebraic connectivity — the kind of
//! multi-metric Stage-5 readout the paper's framework is built for.
//! Also writes a Graphviz DOT drawing of the weighted s-line graph at the
//! chosen `s` (the paper's Figure 2 style: line width = overlap size).
//!
//! Run with: `cargo run --release --example spectral_portrait`

use hyperline::graph::{dot, kcore, WeightedGraph};
use hyperline::prelude::*;
use hyperline::slinegraph::SLineGraph;
use hyperline::util::Table;

fn main() {
    let h = Profile::CompBoard.generate(21);
    println!(
        "compBoard-like network: {} members (vertices), {} boards (hyperedges)\n",
        h.num_vertices(),
        h.num_edges()
    );

    let s_values: Vec<u32> = (1..=8).collect();
    let ens = ensemble_slinegraphs(&h, &s_values, &Strategy::default());

    let mut table = Table::new([
        "s",
        "|V|",
        "|E|",
        "comps",
        "diam",
        "avg clust",
        "degeneracy",
        "alg. conn",
    ]);
    for (s, edges) in &ens.per_s {
        let slg = SLineGraph::new_squeezed(*s, h.num_edges(), edges.clone());
        let comps = slg.connected_components().len();
        let degeneracy = kcore::degeneracy(slg.graph());
        table.row([
            s.to_string(),
            slg.num_vertices().to_string(),
            slg.num_edges().to_string(),
            comps.to_string(),
            slg.s_diameter().to_string(),
            format!("{:.3}", slg.average_clustering()),
            degeneracy.to_string(),
            format!("{:.4}", slg.algebraic_connectivity()),
        ]);
    }
    table.print();

    // Figure-2-style weighted drawing of a small s-line graph.
    let s = 4;
    let (weighted_edges, _) = algo2_slinegraph_weighted(&h, s, &Strategy::default());
    // Squeeze for drawing: only touched hyperedges appear.
    let squeezer =
        hyperline::util::IdSqueezer::from_ids(weighted_edges.iter().flat_map(|&(a, b, _)| [a, b]));
    let compact: Vec<(u32, u32, u32)> = weighted_edges
        .iter()
        .map(|&(a, b, w)| {
            (
                squeezer.squeeze(a).unwrap(),
                squeezer.squeeze(b).unwrap(),
                w,
            )
        })
        .collect();
    let wg = WeightedGraph::from_edges(squeezer.len(), &compact);
    let dot_text = dot::to_dot_weighted(&wg, |v| format!("board {}", squeezer.unsqueeze(v)));
    let path = std::env::temp_dir().join("compboard_s4.dot");
    std::fs::write(&path, &dot_text).expect("write DOT file");
    println!(
        "\nwrote the weighted {s}-line graph ({} vertices, {} edges) to {}",
        wg.graph.num_vertices(),
        wg.graph.num_edges(),
        path.display()
    );
    println!("render with: dot -Tpng {} -o portrait.png", path.display());
}
