//! Table II: PageRank rank/percentile stability across s-clique graphs.
//!
//! On the disGeNet-like disease-gene profile, computes the clique
//! expansion (s = 1) and the higher-order s-clique graphs (s = 10, 100)
//! of the dual hypergraph, ranks diseases by PageRank in each, and prints
//! the paper's Table II: ordinal rank and score percentile of the top-5
//! clique-expansion diseases in every graph — plus the top-k retention
//! rates the paper quotes in the text (92% / 88% for the top 400).
//!
//! `cargo run -p hyperline-bench --release --bin table2_pagerank`
//! Options: `--seed=3 --topk=40`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_graph::pagerank::{pagerank, rank_order, score_percentiles, PageRankOptions};
use hyperline_graph::Graph;
use hyperline_slinegraph::{sclique_graph, Strategy};
use hyperline_util::table::{group_thousands, Table};

fn main() {
    print_header("Table II: disease ranking across higher-order clique expansions");
    let seed: u64 = arg("seed", 3);
    let topk: usize = arg("topk", 40);

    let h = Profile::DisGeNet.generate(seed);
    println!(
        "disGeNet profile: {} diseases (vertices), {} genes (hyperedges)\n",
        h.num_vertices(),
        h.num_edges()
    );

    let s_values = [1u32, 10, 100];
    let mut rankings = Vec::new();
    for &s in &s_values {
        let r = sclique_graph(&h, s, &Strategy::default());
        let g = Graph::from_edges(h.num_vertices(), &r.edges);
        let pr = pagerank(&g, PageRankOptions::default());
        println!(
            "s = {s:>3}: s-clique graph has {} edges",
            group_thousands(r.edges.len() as u64)
        );
        rankings.push((s, rank_order(&pr), score_percentiles(&pr)));
    }
    let top5: Vec<u32> = rankings[0].1.iter().take(5).map(|&(v, _, _)| v).collect();
    let mut table = Table::new(["Disease", "s=1", "s=10", "s=100"]);
    for &d in &top5 {
        let mut cells = vec![format!("disease-{d}")];
        for (_, order, pct) in &rankings {
            let rank = order
                .iter()
                .find(|&&(v, _, _)| v == d)
                .map(|&(_, _, r)| r)
                .unwrap();
            cells.push(format!("{rank} ({:.2}%)", pct[d as usize]));
        }
        table.row(cells);
    }
    println!();
    table.print();

    let base: std::collections::HashSet<u32> = rankings[0]
        .1
        .iter()
        .take(topk)
        .map(|&(v, _, _)| v)
        .collect();
    println!();
    for (s, order, _) in rankings.iter().skip(1) {
        let kept = order
            .iter()
            .take(topk)
            .filter(|&&(v, _, _)| base.contains(&v))
            .count();
        println!(
            "top-{topk} retention vs clique expansion at s = {s}: {kept}/{topk} ({:.0}%)",
            100.0 * kept as f64 / topk as f64
        );
    }
    println!("\n(paper: top-5 ranks nearly identical; 92%/88% of top 400 retained at s=10/100)");
}
