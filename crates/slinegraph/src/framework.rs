//! The five-stage s-line-graph framework (§IV).
//!
//! Stage 1 — preprocessing: relabel hyperedges by degree (optional).
//! Stage 2 — toplexes: simplify to maximal edges (optional).
//! Stage 3 — s-overlap: construct the s-line-graph edge list (the
//!            compute-bound stage; algorithm + strategy selectable).
//! Post-processing ("postprocess" in the stage times): restore original
//!            IDs, normalize orientation, re-sort — all parallel, so the
//!            Amdahl tail after the counting pass stays off one core.
//! Stage 4 — ID squeezing: compact the hypersparse ID space (optional)
//!            and build the CSR s-line graph.
//! Stage 5 — s-metrics: connected components, centrality, spectral
//!            measures (exposed on [`SLineGraph`]; the framework times a
//!            connected-components pass the way the paper's Table I does).
//!
//! Edges are always reported on **original** hyperedge IDs regardless of
//! relabeling or simplification, so downstream analysis is unaffected by
//! the performance knobs.

use crate::algorithms::{algo1_slinegraph, algo2_slinegraph, naive_slinegraph};
use crate::linegraph::SLineGraph;
use crate::spgemm_baseline::spgemm_slinegraph;
use crate::stats::AlgoStats;
use crate::strategy::{Algorithm, Strategy};
use hyperline_hypergraph::{prep, toplex, Hypergraph};
use hyperline_util::parallel::{par_for_each_mut, par_sort_unstable};
use hyperline_util::timer::StageTimes;

/// Configuration of one end-to-end pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// The overlap threshold `s ≥ 1`.
    pub s: u32,
    /// Which construction algorithm runs Stage 3.
    pub algorithm: Algorithm,
    /// Partitioning / relabeling / counter strategy.
    pub strategy: Strategy,
    /// Run Stage 2 (toplex simplification).
    pub compute_toplexes: bool,
    /// Run Stage 4 ID squeezing (recommended; the paper calls the
    /// unsqueezed matrix hypersparse).
    pub squeeze: bool,
    /// Time a Stage-5 connected-components pass (Table I's last row).
    pub run_components: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            s: 2,
            algorithm: Algorithm::Algo2,
            strategy: Strategy::default(),
            compute_toplexes: false,
            squeeze: true,
            run_components: true,
        }
    }
}

impl PipelineConfig {
    /// Convenience constructor for the common case.
    pub fn new(s: u32) -> Self {
        Self {
            s,
            ..Default::default()
        }
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// The constructed s-line graph (original hyperedge IDs).
    pub line_graph: SLineGraph,
    /// Wall time per stage, in execution order.
    pub times: StageTimes,
    /// Worker statistics from Stage 3.
    pub stats: AlgoStats,
    /// s-connected components if `run_components` was set.
    pub components: Option<Vec<Vec<u32>>>,
    /// Number of toplexes if Stage 2 ran.
    pub num_toplexes: Option<usize>,
}

/// Runs the five-stage pipeline on `h`.
pub fn run_pipeline(h: &Hypergraph, config: &PipelineConfig) -> PipelineRun {
    assert!(config.s >= 1, "s must be at least 1");
    let mut times = StageTimes::new();
    let original_m = h.num_edges();

    // Stage 2 (optional, before relabeling so the relabel permutation is
    // over the simplified edge set): toplexes.
    let (working, toplex_ids, num_toplexes) = if config.compute_toplexes {
        let t = times.run("toplexes", || toplex::toplexes(h));
        let count = t.toplex_ids.len();
        (t.simplified, Some(t.toplex_ids), Some(count))
    } else {
        (h.clone(), None, None)
    };

    // Coordinator-side cancellation points between stages: when the
    // request's deadline has expired (flag set by the server watchdog),
    // unwind to the single-flight cache's catch_unwind instead of
    // starting the next stage. Flag checks only — no clocks (HL004).
    hyperline_util::cancel::checkpoint();

    // Stage 1: preprocessing (relabel-by-degree).
    let relabeled = times.run("preprocessing", || {
        prep::relabel_edges_by_degree(&working, config.strategy.relabel)
    });

    // Stage 3: s-overlap.
    let (mut edges, stats) = times.run("s-overlap", || match config.algorithm {
        Algorithm::Naive => {
            let r = naive_slinegraph(&relabeled.hypergraph, config.s, &config.strategy);
            (r.edges, r.stats)
        }
        Algorithm::Algo1 => {
            let r = algo1_slinegraph(&relabeled.hypergraph, config.s, &config.strategy);
            (r.edges, r.stats)
        }
        Algorithm::Algo2 => {
            let r = algo2_slinegraph(&relabeled.hypergraph, config.s, &config.strategy);
            (r.edges, r.stats)
        }
        Algorithm::SpGemm { upper } => {
            let r = spgemm_slinegraph(&relabeled.hypergraph, config.s, upper);
            let stats = r.stats();
            (r.edges, stats)
        }
    });

    hyperline_util::cancel::checkpoint();

    // Post-processing tail, timed as its own stage: restore original IDs
    // (undo relabeling, then simplification) and normalize orientation in
    // one parallel pass, then re-sort in parallel. The sorted multiset of
    // restored pairs is unique, so the output is byte-identical for every
    // worker count.
    times.run("postprocess", || {
        let new_to_old = &relabeled.new_to_old;
        let restore = |pair: &mut (u32, u32)| {
            let mut a = new_to_old[pair.0 as usize];
            let mut b = new_to_old[pair.1 as usize];
            if let Some(ids) = &toplex_ids {
                a = ids[a as usize];
                b = ids[b as usize];
            }
            *pair = if a <= b { (a, b) } else { (b, a) };
        };
        // Tiny results (high s, small datasets) restore serially: worker
        // spawn would dwarf the loop.
        if edges.len() < (1 << 15) {
            edges.iter_mut().for_each(restore);
        } else {
            par_for_each_mut(&mut edges, restore);
        }
        par_sort_unstable(&mut edges);
    });

    hyperline_util::cancel::checkpoint();

    // Stage 4: squeeze + construction.
    let line_graph = times.run("squeeze", || {
        if config.squeeze {
            SLineGraph::new_squeezed(config.s, original_m, edges)
        } else {
            SLineGraph::new_unsqueezed(config.s, original_m, edges)
        }
    });

    // Stage 5 (representative metric, timed like the paper's Table I).
    let components = if config.run_components {
        Some(times.run("s-connected-components", || {
            line_graph.connected_components()
        }))
    } else {
        None
    };

    PipelineRun {
        line_graph,
        times,
        stats,
        components,
        num_toplexes,
    }
}

/// Builds the queryable [`SLineGraph`] for *every* `s` in `s_values`
/// from one Algorithm-3 counting pass (Stage 3 shared, Stages 4–5 per
/// `s`). Each returned graph is identical to what
/// [`crate::algo2_slinegraph`] + [`SLineGraph::new_squeezed`] produce for
/// that `s` alone — which is what lets a server sweep populate the same
/// per-s artifact cache the single-s endpoints read.
///
/// # Panics
/// Panics if `s_values` is empty or contains 0 (like
/// [`ensemble_slinegraphs`]).
pub fn build_slinegraphs_over_s(
    h: &Hypergraph,
    s_values: &[u32],
    strategy: &Strategy,
) -> Vec<(u32, SLineGraph)> {
    crate::ensemble_slinegraphs(h, s_values, strategy)
        .per_s
        .into_iter()
        .map(|(s, edges)| (s, SLineGraph::new_squeezed(s, h.num_edges(), edges)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperline_hypergraph::RelabelOrder;

    #[test]
    fn default_pipeline_on_paper_example() {
        let h = Hypergraph::paper_example();
        let run = run_pipeline(&h, &PipelineConfig::new(2));
        assert_eq!(run.line_graph.edges, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(run.components.as_ref().unwrap(), &vec![vec![0, 1, 2]]);
        assert!(run.times.get("s-overlap").is_some());
        assert!(run.times.get("preprocessing").is_some());
        assert!(run.times.get("postprocess").is_some());
        assert!(run.times.get("squeeze").is_some());
        assert!(run.times.get("s-connected-components").is_some());
    }

    #[test]
    fn all_algorithms_through_pipeline_agree() {
        let h = Hypergraph::paper_example();
        for s in 1..=4u32 {
            let reference = run_pipeline(
                &h,
                &PipelineConfig {
                    s,
                    ..Default::default()
                },
            )
            .line_graph
            .edges;
            for algorithm in [
                Algorithm::Naive,
                Algorithm::Algo1,
                Algorithm::SpGemm { upper: false },
                Algorithm::SpGemm { upper: true },
            ] {
                let run = run_pipeline(
                    &h,
                    &PipelineConfig {
                        s,
                        algorithm,
                        ..Default::default()
                    },
                );
                assert_eq!(run.line_graph.edges, reference, "{algorithm:?} s={s}");
            }
        }
    }

    #[test]
    fn relabeling_is_transparent_in_output() {
        let h = Hypergraph::paper_example();
        let base = run_pipeline(&h, &PipelineConfig::new(2)).line_graph.edges;
        for relabel in RelabelOrder::ALL {
            let config = PipelineConfig {
                strategy: Strategy::default().with_relabel(relabel),
                ..PipelineConfig::new(2)
            };
            let run = run_pipeline(&h, &config);
            assert_eq!(run.line_graph.edges, base, "{relabel:?}");
        }
    }

    #[test]
    fn toplex_stage_shrinks_input_but_keeps_toplex_edges() {
        // Edges 0, 1 are subsets of edge 2; at s = 1, the simplified
        // hypergraph's line graph has the toplexes {2, 3} joined via e.
        let h = Hypergraph::paper_example();
        let config = PipelineConfig {
            compute_toplexes: true,
            ..PipelineConfig::new(1)
        };
        let run = run_pipeline(&h, &config);
        assert_eq!(run.num_toplexes, Some(2));
        assert_eq!(
            run.line_graph.edges,
            vec![(2, 3)],
            "IDs restored to original space"
        );
    }

    #[test]
    fn unsqueezed_pipeline_keeps_id_space() {
        let h = Hypergraph::paper_example();
        let config = PipelineConfig {
            squeeze: false,
            ..PipelineConfig::new(3)
        };
        let run = run_pipeline(&h, &config);
        assert_eq!(run.line_graph.num_vertices(), 4);
        assert!(!run.line_graph.is_squeezed());
    }

    #[test]
    fn component_skip_flag() {
        let h = Hypergraph::paper_example();
        let config = PipelineConfig {
            run_components: false,
            ..PipelineConfig::new(2)
        };
        let run = run_pipeline(&h, &config);
        assert!(run.components.is_none());
        assert!(run.times.get("s-connected-components").is_none());
    }

    #[test]
    fn build_over_s_matches_single_s_construction() {
        let h = Hypergraph::paper_example();
        let st = Strategy::default();
        let many = build_slinegraphs_over_s(&h, &[1, 2, 3, 4], &st);
        assert_eq!(many.len(), 4);
        for (s, slg) in &many {
            let single = SLineGraph::new_squeezed(
                *s,
                h.num_edges(),
                crate::algo2_slinegraph(&h, *s, &st).edges,
            );
            assert_eq!(slg.s, *s);
            assert_eq!(slg.edges, single.edges, "s={s}");
            assert_eq!(slg.num_vertices(), single.num_vertices(), "s={s}");
            assert_eq!(slg.num_hyperedges, h.num_edges());
            assert!(slg.is_squeezed());
        }
    }

    #[test]
    fn stage_total_covers_all_stages() {
        let h = Hypergraph::paper_example();
        let run = run_pipeline(&h, &PipelineConfig::new(2));
        assert_eq!(run.times.len(), 5);
        assert!(run.times.total() >= run.times.get("s-overlap").unwrap());
    }
}
