// Fixture: the same flag, properly paired — Release store, Acquire
// load through an Arc-cloned alias. Zero HL009 findings.
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::Arc;

pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    fn publish(&self) {
        // ordering: publishes initialized data to readers (fixture)
        self.ready.store(true, Ordering::Release);
    }
}

fn wait_ready(flag: &Arc<Flag>) -> bool {
    let watcher = Arc::clone(flag);
    // ordering: pairs with the Release store in Flag::publish (fixture)
    watcher.ready.load(Ordering::Acquire)
}
