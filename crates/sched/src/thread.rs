//! Shim `thread::spawn`/`Builder`/`JoinHandle`.
//!
//! Outside a model run these are thin wrappers over `std::thread`.
//! Inside a run, spawning creates a *model thread*: a real OS thread
//! that immediately parks until the scheduler hands it the CPU, so only
//! one model thread ever executes user code at a time. Model OS threads
//! are named with a `sched-` prefix, which the explorer's panic hook
//! uses to mute the per-schedule panic spew while probing failing
//! schedules.

use crate::rt::{self, Ctx, SchedAbort};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

pub struct Builder {
    name: Option<String>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        ctx: Ctx,
        result: Arc<Mutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
    },
}

pub struct JoinHandle<T>(Inner<T>);

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        p.downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "model thread panicked".to_string())
    }
}

impl Builder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match rt::current_ctx() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
            Some(ctx) => {
                let tid = match ctx.rt.register_child(ctx.tid) {
                    Ok(t) => t,
                    Err(_) => std::panic::panic_any(SchedAbort),
                };
                let result = Arc::new(Mutex::new(None));
                let slot = result.clone();
                let child_ctx = Ctx {
                    rt: ctx.rt.clone(),
                    tid,
                };
                let os_name = format!("sched-{}", self.name.as_deref().unwrap_or("thread"));
                let os = std::thread::Builder::new().name(os_name).spawn(move || {
                    let rt = child_ctx.rt.clone();
                    rt::set_ctx(Some(child_ctx));
                    let msg;
                    if rt.start_thread(tid).is_ok() {
                        let res = catch_unwind(AssertUnwindSafe(f));
                        msg = match &res {
                            Ok(_) => None,
                            Err(p) if p.is::<SchedAbort>() => None,
                            Err(p) => Some(panic_message(p.as_ref())),
                        };
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                    } else {
                        // Aborted before first scheduled: the closure
                        // never ran; record a sentinel panic result.
                        msg = None;
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some(Err(Box::new(SchedAbort) as Box<dyn std::any::Any + Send>));
                    }
                    rt.finish_thread(tid, msg);
                    rt::set_ctx(None);
                })?;
                // Only now that the child's OS thread exists does the
                // spawn become a scheduling point (the child may run
                // first).
                if ctx.rt.yield_op(ctx.tid).is_err() {
                    // Aborted: the child will observe the abort in
                    // start_thread and finish itself.
                    if !std::thread::panicking() {
                        std::panic::panic_any(SchedAbort);
                    }
                }
                Ok(JoinHandle(Inner::Model {
                    tid,
                    ctx,
                    result,
                    os,
                }))
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model {
                tid,
                ctx,
                result,
                os,
            } => {
                if ctx.rt.join_thread(ctx.tid, tid).is_err() && !std::thread::panicking() {
                    std::panic::panic_any(SchedAbort);
                }
                let _ = os.join();
                result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .unwrap_or_else(|| Err(Box::new(SchedAbort) as Box<dyn std::any::Any + Send>))
            }
        }
    }
}

/// A pure scheduling point in a model run; `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match rt::current_ctx() {
        None => std::thread::yield_now(),
        Some(ctx) => {
            if ctx.rt.yield_op(ctx.tid).is_err() && !std::thread::panicking() {
                std::panic::panic_any(SchedAbort);
            }
        }
    }
}

/// Model runs have no clock: sleeping is just a scheduling point.
pub fn sleep(dur: std::time::Duration) {
    match rt::current_ctx() {
        None => std::thread::sleep(dur),
        Some(ctx) => {
            if ctx.rt.yield_op(ctx.tid).is_err() && !std::thread::panicking() {
                std::panic::panic_any(SchedAbort);
            }
        }
    }
}
