//! Table IV: input characteristics of every dataset profile.
//!
//! Prints |V|, |E|, mean degrees (d_v, d_e) and max degrees (Δv, Δe) for
//! each synthetic profile, mirroring the paper's Table IV columns so the
//! scaled-down shapes can be compared against the originals.
//!
//! `cargo run -p hyperline-bench --release --bin table4_datasets`

use hyperline_bench::{arg, print_header};
use hyperline_gen::Profile;
use hyperline_util::table::{human_count, Table};
use hyperline_util::Timer;

fn main() {
    print_header("Table IV: input characteristics (synthetic profiles)");
    let seed: u64 = arg("seed", 42);

    let mut table = Table::new([
        "hypergraph",
        "|V|",
        "|E|",
        "dv",
        "de",
        "max dv",
        "max de",
        "gen time",
    ]);
    for profile in Profile::ALL {
        let t = Timer::start();
        let h = profile.generate(seed);
        let gen_time = t.seconds();
        table.row([
            profile.name().to_string(),
            human_count(h.num_vertices() as u64),
            human_count(h.num_edges() as u64),
            format!("{:.1}", h.mean_vertex_degree()),
            format!("{:.1}", h.mean_edge_size()),
            human_count(h.max_vertex_degree() as u64),
            human_count(h.max_edge_size() as u64),
            format!("{gen_time:.2}s"),
        ]);
    }
    table.print();
    println!("\n(all profiles have skewed hyperedge degree distributions, as in the paper)");
}
