//! Graphviz DOT export.
//!
//! The paper visualizes s-line graphs (Figures 2 and 5) with NetworkX;
//! this module produces equivalent figures via Graphviz: undirected DOT
//! with optional per-vertex labels and per-edge weights (overlap sizes
//! rendered as `penwidth`, the paper's line-width-equals-strength
//! convention in Figure 2).

use crate::graph::{Graph, WeightedGraph};
use std::fmt::Write as _;

/// Renders an unweighted graph as DOT. `label(v)` supplies node labels;
/// isolated vertices are included as bare nodes.
pub fn to_dot(g: &Graph, label: impl Fn(u32) -> String) -> String {
    let mut out = String::from("graph {\n  node [shape=circle];\n");
    for v in 0..g.num_vertices() as u32 {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&label(v)));
    }
    for (u, v) in g.iter_edges() {
        let _ = writeln!(out, "  n{u} -- n{v};");
    }
    out.push_str("}\n");
    out
}

/// Renders a weighted graph as DOT with `penwidth` proportional to edge
/// weight (min weight → 1.0, max weight → 5.0).
pub fn to_dot_weighted(wg: &WeightedGraph, label: impl Fn(u32) -> String) -> String {
    let g = &wg.graph;
    let weights: Vec<u32> = g
        .iter_edges()
        .map(|(u, v)| wg.weight(u, v).unwrap_or(1))
        .collect();
    let (min_w, max_w) = (
        weights.iter().copied().min().unwrap_or(1).max(1),
        weights.iter().copied().max().unwrap_or(1).max(1),
    );
    let scale = |w: u32| -> f64 {
        if max_w == min_w {
            1.0
        } else {
            1.0 + 4.0 * (w - min_w) as f64 / (max_w - min_w) as f64
        }
    };
    let mut out = String::from("graph {\n  node [shape=circle];\n");
    for v in 0..g.num_vertices() as u32 {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(&label(v)));
    }
    for ((u, v), w) in g.iter_edges().zip(weights) {
        let _ = writeln!(
            out,
            "  n{u} -- n{v} [label=\"{w}\", penwidth={:.2}];",
            scale(w)
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let dot = to_dot(&g, |v| format!("e{}", v + 1));
        assert!(dot.starts_with("graph {"));
        assert!(dot.contains("n0 [label=\"e1\"]"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn weighted_dot_scales_penwidth() {
        // Paper Figure 2, s = 1: weights 2, 3, 3, 1.
        let wg = WeightedGraph::from_edges(4, &[(0, 1, 2), (0, 2, 3), (1, 2, 3), (2, 3, 1)]);
        let dot = to_dot_weighted(&wg, |v| (v + 1).to_string());
        assert!(dot.contains("label=\"3\", penwidth=5.00"));
        assert!(dot.contains("label=\"1\", penwidth=1.00"));
        assert!(dot.contains("label=\"2\", penwidth=3.00"));
    }

    #[test]
    fn uniform_weights_do_not_divide_by_zero() {
        let wg = WeightedGraph::from_edges(2, &[(0, 1, 7)]);
        let dot = to_dot_weighted(&wg, |v| v.to_string());
        assert!(dot.contains("penwidth=1.00"));
    }

    #[test]
    fn labels_are_escaped() {
        let g = Graph::from_edges(1, &[]);
        let dot = to_dot(&g, |_| "say \"hi\"".to_string());
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_graph_valid_dot() {
        let g = Graph::from_edges(0, &[]);
        let dot = to_dot(&g, |v| v.to_string());
        assert_eq!(dot, "graph {\n  node [shape=circle];\n}\n");
    }
}
