//! Algorithm 3: computing an ensemble of s-line graphs in one traversal.
//!
//! Ensemble analyses (the paper's §V-B sweeps s = 1..16) would otherwise
//! re-run Algorithm 2 once per `s`. Algorithm 3 decouples counting from
//! filtration: one parallel counting pass stores every pair's overlap
//! count, then each requested `s` filters the stored counts in parallel.
//! The cost is memory proportional to the number of 1-overlapping pairs —
//! the paper reports this OOMs on large inputs, which is reproducible
//! here by feeding it a large profile (see `ensemble` benches).

use crate::counter::{AnyCounter, OverlapCounter};
use crate::partition::execute;
use crate::stats::{AlgoStats, WorkerStats};
use crate::strategy::Strategy;
use hyperline_hypergraph::Hypergraph;
use hyperline_util::parallel::{par_filter_map, par_map_slice, par_sort_unstable};

/// Result of an ensemble run: one edge list per requested `s`, in input
/// order, plus counting-phase statistics.
#[derive(Debug, Clone)]
pub struct EnsembleResult {
    /// `(s, edges)` pairs, edges sorted ascending with `i < j`.
    pub per_s: Vec<(u32, Vec<(u32, u32)>)>,
    /// Work counters from the counting phase.
    pub stats: AlgoStats,
    /// Number of stored overlap pairs (the memory footprint driver).
    pub stored_pairs: usize,
}

/// Computes the s-line graphs for every `s` in `s_values` with a single
/// overlap-counting pass (Algorithm 3).
///
/// Degree pruning uses the *smallest* requested `s` during counting; each
/// filtration step then applies its own `s` exactly.
///
/// # Panics
/// Panics if `s_values` is empty or contains 0.
pub fn ensemble_slinegraphs(
    h: &Hypergraph,
    s_values: &[u32],
    strategy: &Strategy,
) -> EnsembleResult {
    assert!(!s_values.is_empty(), "need at least one s value");
    assert!(s_values.iter().all(|&s| s >= 1), "s must be at least 1");
    let s_min = *s_values.iter().min().unwrap();
    let m = h.num_edges();

    struct Local {
        /// Flat `(i, j, count)` triples for pairs with count ≥ 1.
        triples: Vec<(u32, u32, u32)>,
        scratch: Vec<(u32, u32)>,
        stats: WorkerStats,
        counter: AnyCounter,
    }

    // Phase 1: counting (parallel over source edges).
    let locals = execute(
        m,
        strategy.workers(),
        strategy.partition,
        |_| Local {
            triples: Vec::new(),
            scratch: Vec::new(),
            stats: WorkerStats::default(),
            counter: AnyCounter::new(strategy.counter, m),
        },
        |i, local: &mut Local| {
            if strategy.degree_pruning && (h.edge_size(i) as u32) < s_min {
                return;
            }
            local.stats.edges_processed += 1;
            for &v in h.edge_vertices(i) {
                for &j in crate::algorithms::wedge_targets(h.vertex_edges(v), i, strategy.triangle)
                {
                    local.counter.bump(j);
                    local.stats.wedge_visits += 1;
                }
            }
            local.scratch.clear();
            local.counter.drain_counts(&mut local.scratch);
            // Presort the source's group: sources ascend per worker, so
            // under the upper triangle each worker's triples come out
            // globally sorted and the phase-2 parallel sort reduces to
            // its sortedness check.
            local.scratch.sort_unstable();
            for &(j, n) in local.scratch.iter() {
                // Store normalized (min, max) regardless of triangle side.
                local
                    .triples
                    .push(if i < j { (i, j, n) } else { (j, i, n) });
            }
        },
    );

    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    let mut per_worker = Vec::with_capacity(locals.len());
    for mut l in locals {
        triples.append(&mut l.triples);
        per_worker.push(l.stats);
    }
    let stored_pairs = triples.len();

    // Phase 2: one parallel sort of the stored counts by (i, j) — each
    // pair is stored exactly once, so this is a full order — then per-s
    // filtration. Filtering a sorted list preserves order, so the old
    // per-s `sort_unstable` calls (a serial tail re-paid for every s)
    // disappear entirely.
    par_sort_unstable(&mut triples);
    let per_s: Vec<(u32, Vec<(u32, u32)>)> = if s_values.len() == 1 {
        // A single-s call (the server's artifact-cache path) gets its
        // parallelism from chunked filtration instead of the s sweep.
        let s = s_values[0];
        vec![(
            s,
            par_filter_map(&triples, |&(i, j, n)| (n >= s).then_some((i, j))),
        )]
    } else {
        // Serial filter per s here: the s sweep is already parallel and
        // nesting would oversubscribe.
        par_map_slice(s_values, |&s| (s, filter_pairs(&triples, s)))
    };

    EnsembleResult {
        per_s,
        stats: AlgoStats::new(per_worker),
        stored_pairs,
    }
}

/// Pairs with overlap count `>= s`, preserving the (sorted) input order.
fn filter_pairs(triples: &[(u32, u32, u32)], s: u32) -> Vec<(u32, u32)> {
    triples
        .iter()
        .filter(|&&(_, _, n)| n >= s)
        .map(|&(i, j, _)| (i, j))
        .collect()
}

/// Convenience: number of s-line-graph edges for each `s` in a range —
/// the quantity plotted (log-log) in the paper's Figure 4.
pub fn edge_counts_over_s(
    h: &Hypergraph,
    s_values: &[u32],
    strategy: &Strategy,
) -> Vec<(u32, usize)> {
    ensemble_slinegraphs(h, s_values, strategy)
        .per_s
        .into_iter()
        .map(|(s, edges)| (s, edges.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::algo2_slinegraph;
    use rand::prelude::*;

    #[test]
    fn matches_repeated_algo2_on_paper_example() {
        let h = Hypergraph::paper_example();
        let st = Strategy::default();
        let s_values = [1u32, 2, 3, 4];
        let ens = ensemble_slinegraphs(&h, &s_values, &st);
        assert_eq!(ens.per_s.len(), 4);
        for (s, edges) in &ens.per_s {
            let single = algo2_slinegraph(&h, *s, &st);
            assert_eq!(edges, &single.edges, "s={s}");
        }
    }

    #[test]
    fn matches_repeated_algo2_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..15 {
            let n = rng.gen_range(1..30usize);
            let m = rng.gen_range(1..50usize);
            let lists: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(0..=n.min(10));
                    let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let h = Hypergraph::from_edge_lists(&lists, n);
            let s_values = [1u32, 2, 3, 5];
            let st = Strategy::default();
            let ens = ensemble_slinegraphs(&h, &s_values, &st);
            for (s, edges) in &ens.per_s {
                assert_eq!(edges, &algo2_slinegraph(&h, *s, &st).edges, "s={s}");
            }
        }
    }

    #[test]
    fn ensemble_preserves_s_order_and_counts_decrease() {
        let h = Hypergraph::paper_example();
        let counts = edge_counts_over_s(&h, &[1, 2, 3, 4], &Strategy::default());
        assert_eq!(
            counts.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        for w in counts.windows(2) {
            assert!(w[0].1 >= w[1].1, "edge counts must be non-increasing in s");
        }
        assert_eq!(counts[0].1, 4);
        assert_eq!(counts[3].1, 0);
    }

    #[test]
    fn stored_pairs_counts_one_overlaps() {
        let h = Hypergraph::paper_example();
        // Pairs with >= 1 common vertex: (0,1),(0,2),(1,2),(2,3) = 4.
        let ens = ensemble_slinegraphs(&h, &[2], &Strategy::default());
        assert_eq!(ens.stored_pairs, 4);
    }

    #[test]
    fn pruning_by_smallest_s() {
        // With s_values = [3, 4], edges smaller than 3 are pruned at the
        // counting phase but results stay exact.
        let h = Hypergraph::paper_example();
        let st = Strategy::default();
        let ens = ensemble_slinegraphs(&h, &[3, 4], &st);
        assert_eq!(ens.per_s[0].1, algo2_slinegraph(&h, 3, &st).edges);
        assert_eq!(ens.per_s[1].1, algo2_slinegraph(&h, 4, &st).edges);
    }

    #[test]
    #[should_panic(expected = "at least one s value")]
    fn rejects_empty_s_list() {
        ensemble_slinegraphs(&Hypergraph::paper_example(), &[], &Strategy::default());
    }

    #[test]
    fn no_set_intersections_in_ensemble() {
        let h = Hypergraph::paper_example();
        let ens = ensemble_slinegraphs(&h, &[1, 2], &Strategy::default());
        assert_eq!(ens.stats.total().set_intersections, 0);
    }
}
