//! Uncovering collaborations among actors (§V-C of the paper).
//!
//! Builds an IMDB-like hypergraph (actors are hyperedges over movie
//! vertices) with the paper's planted 100-deep collaborations: a 5-actor
//! star (the "Adoor Bhasi" component — the hub co-stars in 100+ movies
//! with each leaf, the leaves never together) and three pairs. Computes
//! the 100-line graph, 100-connected components and 100-betweenness
//! centrality; the hub is the only actor with non-zero centrality in its
//! component, exactly the paper's finding.
//!
//! Run with: `cargo run --release --example actor_collaborations`

use hyperline::prelude::*;
use hyperline::util::timer::{fmt_duration, Timer};

/// Names from the paper's planted components, in planted-edge order:
/// the star (hub first), then the three pairs.
const ACTORS: [&str; 11] = [
    "Adoor Bhasi",
    "Bahadur",
    "Paravoor Bharathan",
    "Jayabharati",
    "Prem Nazir",
    "Matsunosuke Onoe",
    "Suminojo",
    "Kijaku Otani",
    "Kitsuraku Arashi",
    "Panchito",
    "Dolphy",
];

fn main() {
    let seed = 11;
    let h = Profile::Imdb.generate(seed);
    let planted = Profile::Imdb.planted_edge_range(seed).unwrap();
    let actor_name = |e: u32| -> String {
        if planted.contains(&e) {
            ACTORS[(e - planted.start) as usize].to_string()
        } else {
            format!("actor-{e}")
        }
    };
    println!(
        "IMDB-like hypergraph: {} actors (hyperedges) over {} movies (vertices), {} roles",
        h.num_edges(),
        h.num_vertices(),
        h.num_incidences()
    );

    let s = 100;
    let total = Timer::start();
    let run = run_pipeline(&h, &PipelineConfig::new(s));
    let comps = run.components.clone().unwrap();

    println!("\n(compute {s}-connected components)");
    println!("Here are the {s}-connected components:");
    for comp in &comps {
        let names: Vec<String> = comp.iter().map(|&e| actor_name(e)).collect();
        println!("  [{}]", names.join(", "));
    }

    println!("\n(compute {s}-betweenness centrality)");
    let bc = run.line_graph.betweenness();
    for &(e, score) in bc.iter().filter(|&&(_, score)| score > 0.0) {
        println!("  {}({score:.4})", actor_name(e));
    }
    println!(
        "\nend-to-end ({}-line graph + components + centrality): {}",
        s,
        fmt_duration(total.elapsed())
    );
    print!("{}", run.times);
}
