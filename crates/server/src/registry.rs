//! The dataset registry: named hypergraphs loaded once, queried many
//! times.
//!
//! Datasets enter the registry at startup (CLI arguments) or at runtime
//! (`POST /datasets`), either from an edge-list file or from a generator
//! profile. They are immutable once loaded and shared behind `Arc`, so
//! long-running artifact computations never block the registry.

use hyperline_gen::Profile;
use hyperline_hypergraph::{io, Hypergraph};
use hyperline_util::FxHashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Where a registered dataset came from (reported by `GET /datasets`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetSource {
    /// Loaded from an edge-list file at this path.
    File(String),
    /// Generated from a named profile with this seed.
    Profile {
        /// Profile name as the paper spells it.
        profile: String,
        /// Generator seed.
        seed: u64,
    },
    /// Inserted programmatically (tests, embedding).
    Inline,
}

/// A registered dataset.
#[derive(Clone)]
pub struct Dataset {
    /// The hypergraph itself.
    pub hypergraph: Arc<Hypergraph>,
    /// Provenance for listings.
    pub source: DatasetSource,
}

/// A concurrent name → dataset map.
#[derive(Default)]
pub struct DatasetRegistry {
    inner: RwLock<FxHashMap<String, Dataset>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `h` under `name`, replacing any previous dataset of that
    /// name. Returns whether a dataset was replaced.
    pub fn insert(&self, name: &str, h: Hypergraph, source: DatasetSource) -> bool {
        let mut inner = self.inner.write().unwrap();
        inner
            .insert(
                name.to_string(),
                Dataset {
                    hypergraph: Arc::new(h),
                    source,
                },
            )
            .is_some()
    }

    /// Loads an edge-list file and registers it. The dataset name defaults
    /// to the file stem (`data/dblp.hgr` → `dblp`) unless `name` is given.
    pub fn load_file(&self, path: &str, name: Option<&str>) -> Result<String, String> {
        let stem = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path);
        let name = name.unwrap_or(stem).to_string();
        validate_name(&name)?;
        if hyperline_util::failpoint::check("dataset.read").is_some() {
            return Err(format!(
                "cannot load {path}: {}",
                hyperline_util::failpoint::io_error("dataset.read")
            ));
        }
        // Parse errors deliberately omit the offending token: this error
        // can travel to HTTP clients, and echoing tokens would leak the
        // content of whatever file was pointed at.
        let h = io::load_edge_list(path).map_err(|e| match e {
            io::ParseError::Io(io_err) => format!("cannot load {path}: {io_err}"),
            io::ParseError::BadToken { line, .. } => {
                format!("cannot load {path}: line {line} is not a valid edge list")
            }
            io::ParseError::BadPair { line } => {
                format!("cannot load {path}: line {line} is not a valid edge list")
            }
            io::ParseError::IdSpaceTooLarge { max_id, .. } => {
                format!(
                    "cannot load {path}: ID space too large (max ID {max_id}); remap IDs densely"
                )
            }
            // IDs are numeric, not file content: safe to echo, and the
            // side/ID/space triple is the actionable part.
            io::ParseError::OutOfRange(e) => format!("cannot load {path}: {e}"),
        })?;
        self.insert(&name, h, DatasetSource::File(path.to_string()));
        Ok(name)
    }

    /// Generates a named profile and registers it (name defaults to the
    /// profile's own name).
    pub fn load_profile(
        &self,
        profile_name: &str,
        seed: u64,
        name: Option<&str>,
    ) -> Result<String, String> {
        let profile = Profile::from_name(profile_name)
            .ok_or_else(|| format!("unknown profile {profile_name:?}"))?;
        let name = name.unwrap_or(profile.name()).to_string();
        validate_name(&name)?;
        let h = profile.generate(seed);
        self.insert(
            &name,
            h,
            DatasetSource::Profile {
                profile: profile.name().to_string(),
                seed,
            },
        );
        Ok(name)
    }

    /// Looks a dataset up by name.
    pub fn get(&self, name: &str) -> Option<Dataset> {
        self.inner.read().unwrap().get(name).cloned()
    }

    /// Registered names with their datasets, sorted by name.
    pub fn list(&self) -> Vec<(String, Dataset)> {
        let inner = self.inner.read().unwrap();
        let mut out: Vec<(String, Dataset)> =
            inner.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// True when no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dataset names travel in URL paths, so keep them path- and
/// query-safe: non-empty ASCII alphanumerics plus `-`, `_`, `.`.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 128 {
        return Err("dataset name must be 1..=128 characters".to_string());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err(format!(
            "dataset name {name:?} may only contain ASCII alphanumerics, '-', '_', '.'"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_list() {
        let reg = DatasetRegistry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert("paper", Hypergraph::paper_example(), DatasetSource::Inline));
        assert_eq!(reg.len(), 1);
        let d = reg.get("paper").unwrap();
        assert_eq!(d.hypergraph.num_edges(), 4);
        assert!(reg.get("missing").is_none());
        // Replacing reports the overwrite.
        assert!(reg.insert("paper", Hypergraph::paper_example(), DatasetSource::Inline));
        assert_eq!(reg.list().len(), 1);
    }

    #[test]
    fn profile_loading() {
        let reg = DatasetRegistry::new();
        let name = reg.load_profile("lesMis", 42, None).unwrap();
        assert_eq!(name, "lesMis");
        assert_eq!(reg.get("lesMis").unwrap().hypergraph.num_edges(), 400);
        assert!(matches!(
            reg.get("lesMis").unwrap().source,
            DatasetSource::Profile { seed: 42, .. }
        ));
        assert!(reg.load_profile("not-a-profile", 1, None).is_err());
        // Custom name + case-insensitive profile lookup.
        let name = reg.load_profile("LESMIS", 7, Some("tiny")).unwrap();
        assert_eq!(name, "tiny");
    }

    #[test]
    fn file_loading_and_stem_naming() {
        let dir = std::env::temp_dir().join("hyperline-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("example.hgr");
        io::save_edge_list(&Hypergraph::paper_example(), &path).unwrap();
        let reg = DatasetRegistry::new();
        let name = reg.load_file(path.to_str().unwrap(), None).unwrap();
        assert_eq!(name, "example");
        assert_eq!(reg.get("example").unwrap().hypergraph.num_vertices(), 6);
        assert!(reg.load_file("/does/not/exist.hgr", None).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn name_validation() {
        let reg = DatasetRegistry::new();
        for bad in ["", "has space", "sla/sh", "qu?ery", &"x".repeat(200)] {
            assert!(
                reg.load_profile("lesMis", 1, Some(bad)).is_err(),
                "accepted bad name {bad:?}"
            );
        }
        assert!(reg.load_profile("lesMis", 1, Some("ok-name_1.0")).is_ok());
    }
}
