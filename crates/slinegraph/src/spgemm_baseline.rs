//! The SpGEMM baseline wired into the s-line-graph API (§III-G, §VI-G).
//!
//! Computes `L = Hᵀ·H` with a general Gustavson SpGEMM, materializes the
//! product, then filters `L[i,j] ≥ s` — the approach the paper's Figure 11
//! compares against. Two variants: the full product ("SpGEMM+Filter") and
//! upper-triangle-only ("SpGEMM+Filter+Upper").

use crate::stats::{AlgoStats, WorkerStats};
use hyperline_hypergraph::Hypergraph;
use hyperline_sparse::{filter_to_edge_list, overlap_matrix, Triangle};

/// Result of an SpGEMM-based construction, including the intermediate
/// product's footprint (the cost the paper's algorithms avoid).
#[derive(Debug, Clone)]
pub struct SpgemmResult {
    /// s-line-graph edges `(i, j)`, `i < j`, sorted.
    pub edges: Vec<(u32, u32)>,
    /// Non-zeros of the materialized product matrix.
    pub product_nnz: usize,
    /// Bytes held by the materialized product matrix.
    pub product_bytes: usize,
}

impl SpgemmResult {
    /// Adapts to the common stats shape (the product nnz plays the role
    /// of "work done"; no per-worker split is available from the library
    /// call, matching how the paper treats it as a black box).
    pub fn stats(&self) -> AlgoStats {
        AlgoStats::new(vec![WorkerStats {
            edges_processed: 0,
            wedge_visits: self.product_nnz as u64,
            set_intersections: 0,
            edges_emitted: self.edges.len() as u64,
        }])
    }
}

/// s-line graph via SpGEMM + filtration.
pub fn spgemm_slinegraph(h: &Hypergraph, s: u32, upper_only: bool) -> SpgemmResult {
    assert!(s >= 1, "s must be at least 1");
    let triangle = if upper_only {
        Triangle::Upper
    } else {
        Triangle::Full
    };
    let product = overlap_matrix(h.edge_csr(), h.vertex_csr(), triangle);
    // Row-major filtration of sorted rows is already sorted — the old
    // full `sort_unstable` here was a pure serial tail.
    let edges = filter_to_edge_list(&product, s);
    debug_assert!(edges.is_sorted());
    SpgemmResult {
        edges,
        product_nnz: product.nnz(),
        product_bytes: product.storage_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::algo2_slinegraph;
    use crate::strategy::Strategy;
    use rand::prelude::*;

    #[test]
    fn matches_algo2_on_paper_example() {
        let h = Hypergraph::paper_example();
        for s in 1..=4u32 {
            let expect = algo2_slinegraph(&h, s, &Strategy::default()).edges;
            assert_eq!(spgemm_slinegraph(&h, s, false).edges, expect, "full s={s}");
            assert_eq!(spgemm_slinegraph(&h, s, true).edges, expect, "upper s={s}");
        }
    }

    #[test]
    fn matches_algo2_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..15 {
            let n = rng.gen_range(1..25usize);
            let m = rng.gen_range(1..40usize);
            let lists: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let k = rng.gen_range(0..=n.min(8));
                    let mut v: Vec<u32> = (0..k).map(|_| rng.gen_range(0..n as u32)).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            let h = Hypergraph::from_edge_lists(&lists, n);
            let s = rng.gen_range(1..5u32);
            let expect = algo2_slinegraph(&h, s, &Strategy::default()).edges;
            assert_eq!(spgemm_slinegraph(&h, s, false).edges, expect);
            assert_eq!(spgemm_slinegraph(&h, s, true).edges, expect);
        }
    }

    #[test]
    fn upper_variant_materializes_less() {
        let h = Hypergraph::paper_example();
        let full = spgemm_slinegraph(&h, 2, false);
        let upper = spgemm_slinegraph(&h, 2, true);
        assert!(upper.product_nnz < full.product_nnz);
        assert!(upper.product_bytes < full.product_bytes);
        assert_eq!(upper.edges, full.edges);
    }

    #[test]
    fn stats_adapter() {
        let h = Hypergraph::paper_example();
        let r = spgemm_slinegraph(&h, 2, true);
        let stats = r.stats();
        assert_eq!(stats.total().edges_emitted as usize, r.edges.len());
        assert_eq!(stats.total().set_intersections, 0);
    }
}
