//! The weighted clique-expansion matrix `W = H·Hᵀ − D_V` (§III-H).
//!
//! `W[i,j]` is the number of hyperedges containing both vertices `i` and
//! `j` (`adj(i, j)`); thresholding it at `s` gives the adjacency matrix
//! of the s-clique graph. The paper's point is that materializing `W` is
//! prohibitively dense and the hashmap algorithms on the dual avoid it —
//! this module *does* materialize it, as the measurable baseline and as
//! the test oracle for the dual construction.

use crate::matrix::CsrMatrix;
use crate::spgemm::{spgemm, Triangle};
use hyperline_hypergraph::Hypergraph;

/// The weighted clique-expansion matrix `W = H·Hᵀ − D_V` of a hypergraph
/// (vertex × vertex, diagonal removed). With `triangle == Upper` only the
/// strict upper triangle is computed.
pub fn weighted_clique_expansion(h: &Hypergraph, triangle: Triangle) -> CsrMatrix {
    // H (vertex × edge) times Hᵀ (edge × vertex).
    let a = CsrMatrix::from_pattern(h.vertex_csr());
    let b = CsrMatrix::from_pattern(h.edge_csr());
    let product = spgemm(&a, &b, triangle);
    match triangle {
        // Upper triangle already excludes the diagonal (D_V).
        Triangle::Upper => product,
        Triangle::Full => strip_diagonal(&product),
    }
}

/// Copy of `m` with the diagonal removed (the `− D_V` term).
fn strip_diagonal(m: &CsrMatrix) -> CsrMatrix {
    let triplets: Vec<(u32, u32, u32)> = m.iter().filter(|&(i, j, _)| i != j).collect();
    CsrMatrix::from_triplets(m.nrows(), m.ncols(), &triplets)
}

/// s-clique edge list straight from the materialized `W` (the
/// memory-hungry route the paper contrasts with running the hashmap
/// algorithm on the dual).
pub fn sclique_via_w(h: &Hypergraph, s: u32) -> Vec<(u32, u32)> {
    let w = weighted_clique_expansion(h, Triangle::Upper);
    let mut edges: Vec<(u32, u32)> = w
        .iter()
        .filter(|&(_, _, v)| v >= s)
        .map(|(i, j, _)| (i, j))
        .collect();
    edges.sort_unstable();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_entries_are_adj_counts() {
        let h = Hypergraph::paper_example();
        let w = weighted_clique_expansion(&h, Triangle::Full);
        assert_eq!(w.nrows(), 6);
        for u in 0..6u32 {
            assert_eq!(w.get(u as usize, u), 0, "diagonal must be removed");
            for v in 0..6u32 {
                if u != v {
                    assert_eq!(w.get(u as usize, v), h.adj(u, v) as u32, "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn upper_matches_full() {
        let h = Hypergraph::paper_example();
        let full = weighted_clique_expansion(&h, Triangle::Full);
        let upper = weighted_clique_expansion(&h, Triangle::Upper);
        for (i, j, v) in upper.iter() {
            assert!(j > i);
            assert_eq!(full.get(i as usize, j), v);
        }
        assert_eq!(upper.nnz() * 2, full.nnz());
    }

    #[test]
    fn sclique_via_w_matches_known_values() {
        let h = Hypergraph::paper_example();
        // adj(b,c) = 3 is the only pair in >= 3 common edges.
        assert_eq!(sclique_via_w(&h, 3), vec![(1, 2)]);
        // s = 1: the 2-section — 11 edges.
        assert_eq!(sclique_via_w(&h, 1).len(), 11);
    }

    #[test]
    fn density_motivates_avoiding_w() {
        // A single large hyperedge makes W quadratically dense — the
        // paper's motivating observation for the dual route.
        let h = Hypergraph::from_edge_lists(&[(0..40u32).collect()], 40);
        let w = weighted_clique_expansion(&h, Triangle::Full);
        assert_eq!(w.nnz(), 40 * 39);
    }
}
