// Fixture: a Release store whose only reader is Relaxed — the fence
// pairs with nothing. HL009 must flag the store site.
use crate::sync::atomic::{AtomicBool, Ordering};

pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    fn publish(&self) {
        // ordering: publishes initialized data to readers (fixture)
        self.ready.store(true, Ordering::Release);
    }

    fn check(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}
