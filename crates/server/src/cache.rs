//! The two cache tiers: LRU-evicted, memory-budgeted, single-flight.
//!
//! One generic engine, [`SingleFlightCache`], backs both tiers of the
//! server's cache hierarchy (the multi-level cache that makes IIPImage's
//! repeated tile queries cheap plays the same role):
//!
//! * the **artifact tier** ([`ArtifactCache`], keyed by [`CacheKey`]) —
//!   computed s-line graphs, keyed by everything that determines their
//!   content: `(dataset, s, algorithm, weighted)`;
//! * the **metric tier** (keyed by [`MetricKey`]) — Stage-5 results
//!   (components, betweenness rankings, spectra, sweep counts) layered
//!   over the artifact tier, so warm metric queries skip the parallel
//!   kernels entirely.
//!
//! Values are held behind `Arc` so eviction never invalidates an
//! in-flight response — and so responses can **stream** straight from a
//! cached value: a streamed edge-list body holds the `Arc<Artifact>`
//! and renders it into the socket at write time, never materializing a
//! body-sized buffer (see `server::EdgeRows` and [`crate::json`]'s
//! `StreamFragment`). Three guarantees matter under concurrency:
//!
//! * **LRU under a byte budget** — inserting past the budget evicts the
//!   least-recently-used entries first (the newest entry is kept even if
//!   it alone exceeds the budget, so oversized artifacts still serve).
//! * **Single-flight** — concurrent requests for the same missing key
//!   trigger exactly one computation; the rest block on a condvar and
//!   share the result.
//! * **Generation-fenced invalidation** — replacing a dataset bumps its
//!   generation; computations started against the old data may still be
//!   served to the callers that asked for them but are never cached.
//! * **Deadline-aware flights** — every flight carries an
//!   interest-counted [`CancelToken`]; requests attach their deadline to
//!   it, waiters give up (504) when their deadline passes, and the
//!   leader's compute is cancelled only when *all* participants are
//!   gone. Cancelled flights resolve to [`cancel::CANCELLED`], which is
//!   never negative-cached.
//! * **Negative-result backoff** — genuine compute errors (not panics,
//!   not cancellations) are remembered for a short TTL so a
//!   deterministically failing key cannot thundering-herd the compute
//!   budget (off by default; the server arms it).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Condvar, Mutex, MutexGuard};
use hyperline_util::cancel::{self, CancelToken, Deadline};
use hyperline_util::telemetry::Histogram;
use hyperline_util::{failpoint, FxHashMap};
use std::time::{Duration, Instant};

/// A cache key scoped to one dataset: generation bookkeeping and
/// invalidation group entries by [`TierKey::dataset`]. Both tiers' keys
/// implement this, which is what lets them share the engine (and its
/// invalidation semantics).
pub trait TierKey: Clone + Eq + std::hash::Hash {
    /// The registry name of the dataset this entry was derived from.
    fn dataset(&self) -> &str;
}

/// Identity of one cached artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry name of the source dataset.
    pub dataset: String,
    /// The overlap threshold `s`.
    pub s: u32,
    /// Construction algorithm (distinct algorithms are distinct artifacts
    /// so comparative benchmarking never aliases).
    pub algorithm: AlgoKind,
    /// Whether overlap weights were materialized.
    pub weighted: bool,
}

impl TierKey for CacheKey {
    fn dataset(&self) -> &str {
        &self.dataset
    }
}

/// Identity of one cached Stage-5 metric result: the artifact it was
/// computed from plus the metric and its compute-time parameters.
/// Render-time parameters (`top`, `limit`) are *not* part of the key —
/// every truncation of one ranking shares one cached compute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetricKey {
    /// The artifact this metric was computed from. For [`MetricKind::Sweep`]
    /// (which spans every `s`), this is the dataset's sweep pseudo-key:
    /// `s = 0` with the default algorithm.
    pub artifact: CacheKey,
    /// The metric and its compute-time parameters.
    pub metric: MetricKind,
}

impl TierKey for MetricKey {
    fn dataset(&self) -> &str {
        &self.artifact.dataset
    }
}

/// The Stage-5 metrics the metric tier caches, with the parameters that
/// change the computed value (and therefore belong in the key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// s-connected components (full list; `limit` applies at render).
    Components,
    /// s-betweenness ranking (full ranking; `top` applies at render).
    Betweenness {
        /// Number of sampled BFS sources (0 = exact Brandes).
        samples: u32,
        /// Sampling seed. The server pins this to 0 when `samples == 0`
        /// (the exact variant never reads it), so every exact request
        /// shares one entry regardless of any `?seed=` it carried.
        seed: u64,
    },
    /// Diameter + algebraic connectivity.
    Spectrum,
    /// `|E(L_s)|` for `s = 1..=max_s`.
    Sweep {
        /// Upper end of the sweep.
        max_s: u32,
    },
}

/// The s-line-graph construction algorithms the server exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// The paper's hashmap-counting Algorithm 2 (default).
    Algo2,
    /// The HiPC'21 set-intersection Algorithm 1.
    Algo1,
    /// SpGEMM + filtration baseline (upper triangle).
    Spgemm,
    /// All-pairs naive baseline.
    Naive,
}

impl AlgoKind {
    /// Parses the `algo=` query value.
    pub fn from_name(name: &str) -> Option<AlgoKind> {
        match name {
            "algo2" | "2" => Some(AlgoKind::Algo2),
            "algo1" | "1" => Some(AlgoKind::Algo1),
            "spgemm" => Some(AlgoKind::Spgemm),
            "naive" => Some(AlgoKind::Naive),
            _ => None,
        }
    }

    /// Canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Algo2 => "algo2",
            AlgoKind::Algo1 => "algo1",
            AlgoKind::Spgemm => "spgemm",
            AlgoKind::Naive => "naive",
        }
    }
}

/// How a [`SingleFlightCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Computed by this call.
    Miss,
    /// Another in-flight call computed it; this call waited and shared.
    Coalesced,
}

struct Entry<V> {
    value: Arc<V>,
    bytes: usize,
    last_used: u64,
}

struct Inflight<V> {
    slot: Mutex<Option<Result<Arc<V>, String>>>,
    ready: Condvar,
    /// Interest-counted cancellation flag for this flight: the leader
    /// and every waiter hold one registration (via their request
    /// deadline); the flag trips only when all of them have expired or
    /// given up, at which point the leader's kernel loops exit early.
    cancel: CancelToken,
}

struct Inner<K, V> {
    map: FxHashMap<K, Entry<V>>,
    inflight: FxHashMap<K, Arc<Inflight<V>>>,
    /// Per-dataset invalidation generation: a computation started under
    /// an older generation must not enter the map (its input was
    /// replaced mid-flight).
    generations: FxHashMap<String, u64>,
    /// Negative cache: recent compute *errors* (never panics or
    /// cancellations) with their record time, so a deterministically
    /// failing compute is answered from here for a short backoff window
    /// instead of thundering-herding the compute budget.
    negative: FxHashMap<K, (String, Instant)>,
    used_bytes: usize,
    clock: u64,
}

impl<K, V> Inner<K, V> {
    fn generation(&self, dataset: &str) -> u64 {
        self.generations.get(dataset).copied().unwrap_or(0)
    }
}

/// Point-in-time cache statistics for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that computed their artifact.
    pub misses: u64,
    /// Requests that piggybacked on another request's computation.
    pub coalesced: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Errors answered from the negative cache inside its TTL.
    pub negative_hits: u64,
    /// Waiters that abandoned a flight at their deadline.
    pub gave_up: u64,
    /// Flights cancelled after every participant expired or gave up.
    pub cancelled: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated resident bytes.
    pub used_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

/// The LRU + single-flight cache engine, generic over key and value so
/// both tiers (and cheap unit tests) share one implementation.
pub struct SingleFlightCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    negative_hits: AtomicU64,
    gave_up: AtomicU64,
    cancelled: AtomicU64,
    /// Negative-cache TTL in milliseconds (0 = disabled). Plain config
    /// written once at startup; Relaxed is deliberate.
    negative_ttl_ms: AtomicU64,
    /// How long the cache's central mutex stays held per acquisition,
    /// microseconds. Eviction scans and big map mutations show up here
    /// as tail latency — the histogram is what tells contention apart
    /// from slow critical sections.
    lock_hold: Histogram,
}

/// A guard over [`Inner`] that records how long the lock was held into
/// the cache's `lock_hold` histogram when released.
struct TimedGuard<'a, K, V> {
    guard: MutexGuard<'a, Inner<K, V>>,
    hold: &'a Histogram,
    acquired: Instant,
}

impl<K, V> std::ops::Deref for TimedGuard<'_, K, V> {
    type Target = Inner<K, V>;
    fn deref(&self) -> &Inner<K, V> {
        &self.guard
    }
}

impl<K, V> std::ops::DerefMut for TimedGuard<'_, K, V> {
    fn deref_mut(&mut self) -> &mut Inner<K, V> {
        &mut self.guard
    }
}

impl<K, V> Drop for TimedGuard<'_, K, V> {
    fn drop(&mut self) {
        self.hold.record_micros(self.acquired.elapsed());
    }
}

/// The artifact tier: s-line graphs keyed by [`CacheKey`].
pub type ArtifactCache<V> = SingleFlightCache<CacheKey, V>;

impl<K: TierKey, V> SingleFlightCache<K, V> {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                inflight: FxHashMap::default(),
                generations: FxHashMap::default(),
                negative: FxHashMap::default(),
                used_bytes: 0,
                clock: 0,
            }),
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            negative_hits: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            negative_ttl_ms: AtomicU64::new(0),
            lock_hold: Histogram::new(),
        }
    }

    /// Acquires the central lock, timing the hold.
    fn lock(&self) -> TimedGuard<'_, K, V> {
        let guard = self.inner.lock().unwrap();
        TimedGuard {
            guard,
            hold: &self.lock_hold,
            acquired: Instant::now(),
        }
    }

    /// Hold-time distribution of the cache's central mutex.
    pub fn lock_hold_histogram(&self) -> &Histogram {
        &self.lock_hold
    }

    /// Arms the negative cache: compute errors are re-served for `ttl`
    /// before a recompute is allowed. `Duration::ZERO` (the default)
    /// disables it.
    pub fn set_negative_ttl(&self, ttl: Duration) {
        self.negative_ttl_ms
            .store(ttl.as_millis() as u64, Ordering::Relaxed);
    }

    fn negative_ttl(&self) -> Duration {
        Duration::from_millis(self.negative_ttl_ms.load(Ordering::Relaxed))
    }

    /// Looks `key` up; on a miss, runs `compute` (outside the cache lock)
    /// and caches its value with the reported byte size. Concurrent calls
    /// for the same key run `compute` once. Errors are propagated to all
    /// waiters and never cached; a panicking `compute` is converted to an
    /// error so waiters never deadlock on an abandoned flight. If the
    /// dataset is invalidated while the computation is in flight, the
    /// result is still returned to callers already waiting on it but is
    /// not cached (it was built from replaced input).
    pub fn get_or_compute(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<(V, usize), String>,
    ) -> Result<(Arc<V>, CacheOutcome), String> {
        self.get_or_compute_cancellable(key, None, compute)
    }

    /// [`get_or_compute`](Self::get_or_compute) with request-lifecycle
    /// awareness. When `deadline` is given:
    ///
    /// * the request registers interest in the flight's [`CancelToken`]
    ///   for as long as it participates — the watchdog releases that
    ///   interest at expiry, and the compute is only cancelled (kernel
    ///   loops exit, coordinator unwinds to this function's
    ///   `catch_unwind`, flight resolves to [`cancel::CANCELLED`]) when
    ///   *every* participant's interest is gone;
    /// * a **waiter** whose deadline passes stops waiting and returns
    ///   [`cancel::CANCELLED`] (the server maps it to 504) while the
    ///   flight keeps running for the remaining participants;
    /// * a **leader** whose own deadline expires while other
    ///   participants are live finishes the compute for them — the
    ///   result is cached and shared; the leader's own response is the
    ///   caller's business (it sees its deadline expired).
    ///
    /// Genuine compute errors enter the negative cache (when a TTL is
    /// armed via [`set_negative_ttl`](Self::set_negative_ttl));
    /// cancellations and panics never do.
    pub fn get_or_compute_cancellable(
        &self,
        key: &K,
        deadline: Option<&Deadline>,
        compute: impl FnOnce() -> Result<(V, usize), String>,
    ) -> Result<(Arc<V>, CacheOutcome), String> {
        // Fast path + single-flight registration under one lock.
        enum Role<V> {
            Owner(Arc<Inflight<V>>),
            Waiter(Arc<Inflight<V>>),
        }
        fn flight_token<V>(role: &Role<V>) -> &CancelToken {
            match role {
                Role::Owner(flight) | Role::Waiter(flight) => &flight.cancel,
            }
        }
        let (role, generation_at_start) = {
            let mut inner = self.lock();
            inner.clock += 1;
            let now = inner.clock;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&entry.value), CacheOutcome::Hit));
            }
            let ttl = self.negative_ttl();
            if !ttl.is_zero() {
                if let Some((err, at)) = inner.negative.get(key) {
                    if at.elapsed() < ttl {
                        let err = err.clone();
                        self.negative_hits.fetch_add(1, Ordering::Relaxed);
                        return Err(err);
                    }
                    inner.negative.remove(key);
                }
            }
            let generation = inner.generation(key.dataset());
            match inner.inflight.get(key) {
                Some(flight) => (Role::Waiter(Arc::clone(flight)), generation),
                None => {
                    let flight = Arc::new(Inflight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                        cancel: CancelToken::new(),
                    });
                    inner.inflight.insert(key.clone(), Arc::clone(&flight));
                    (Role::Owner(flight), generation)
                }
            }
        };

        // Hold this participant's interest in the flight for the span of
        // the call: attached to the deadline (watchdog releases at
        // expiry, guard releases at return), or permanently when the
        // request has no deadline — a flight with an undeadlined
        // participant is never cancelled.
        let _interest = match deadline {
            Some(d) => Some(d.attach(flight_token(&role))),
            None => {
                flight_token(&role).register_interest();
                None
            }
        };

        if let Role::Waiter(flight) = role {
            // Someone else is computing: wait for their result, up to
            // this request's own deadline.
            let give_up_at = deadline.map(|d| d.at());
            let mut slot = flight.slot.lock().unwrap();
            loop {
                if let Some(result) = slot.as_ref() {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return match result {
                        Ok(value) => Ok((Arc::clone(value), CacheOutcome::Coalesced)),
                        Err(e) => Err(e.clone()),
                    };
                }
                match give_up_at {
                    None => slot = flight.ready.wait(slot).unwrap(),
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            // Give up: drop out of the flight (the
                            // interest guard releases on return, letting
                            // the leader cancel once everyone is gone).
                            self.gave_up.fetch_add(1, Ordering::Relaxed);
                            return Err(cancel::CANCELLED.to_string());
                        }
                        let (guard, _) = flight.ready.wait_timeout(slot, at - now).unwrap();
                        slot = guard;
                    }
                }
            }
        }

        let Role::Owner(flight) = role else {
            unreachable!("waiters returned above")
        };
        // This call owns the computation (lock NOT held). A panic inside
        // `compute` must still resolve the flight, or every waiter (and
        // all future requests for this key) would hang. The compute runs
        // under the flight's cancel token so pipeline stages and kernel
        // chunk loops can poll it; a cancellation unwind is converted to
        // the CANCELLED sentinel here, a real panic to an error.
        let token = flight.cancel.clone();
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cancel::with_token(Some(token), compute)
        }));
        // `negative_cacheable`: only genuine compute errors back off —
        // a cancellation must be retried by the next request, and a
        // panic's recompute behavior is pinned by tests.
        let (result, negative_cacheable) = match computed {
            Ok(Ok(value_bytes)) => (Ok(value_bytes), false),
            Ok(Err(e)) => (Err(e), true),
            Err(payload) => {
                if payload.downcast_ref::<cancel::Cancelled>().is_some() {
                    self.cancelled.fetch_add(1, Ordering::Relaxed);
                    (Err(cancel::CANCELLED.to_string()), false)
                } else {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    (Err(format!("computation panicked: {what}")), false)
                }
            }
        };
        let mut inner = self.lock();
        // Detach only this call's own marker: invalidate_dataset may have
        // removed it already (and a post-invalidation request may have
        // registered a fresh flight under the same key — leave theirs).
        if inner
            .inflight
            .get(key)
            .is_some_and(|current| Arc::ptr_eq(current, &flight))
        {
            inner.inflight.remove(key);
        }
        let outcome = match result {
            Ok((value, bytes)) => {
                let value = Arc::new(value);
                // Only cache results whose input dataset was not replaced
                // mid-computation; the value is still valid for callers
                // that requested it against the old dataset. A
                // `cache.insert` failpoint models a failed insert: the
                // value is still served, just not retained.
                if inner.generation(key.dataset()) == generation_at_start
                    && failpoint::check("cache.insert").is_none()
                {
                    inner.clock += 1;
                    let now = inner.clock;
                    // The key can already be resident: a sweep's
                    // `insert_if_current` may land the same artifact
                    // while this flight computes (flights are invisible
                    // to `lookup`). Account the replaced entry's bytes
                    // or `used_bytes` inflates permanently.
                    if let Some(previous) = inner.map.insert(
                        key.clone(),
                        Entry {
                            value: Arc::clone(&value),
                            bytes,
                            last_used: now,
                        },
                    ) {
                        inner.used_bytes -= previous.bytes;
                    }
                    inner.used_bytes += bytes;
                    self.evict_lru(&mut inner, key);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((value, CacheOutcome::Miss))
            }
            Err(e) => {
                let ttl = self.negative_ttl();
                if negative_cacheable && !ttl.is_zero() {
                    inner
                        .negative
                        .insert(key.clone(), (e.clone(), Instant::now()));
                }
                Err(e)
            }
        };
        let shared = match &outcome {
            Ok((value, _)) => Ok(Arc::clone(value)),
            Err(e) => Err(e.clone()),
        };
        drop(inner);
        *flight.slot.lock().unwrap() = Some(shared);
        flight.ready.notify_all();
        outcome
    }

    /// Looks `key` up without computing anything. Touches the LRU clock
    /// and counts a hit when found; an absent key counts nothing (the
    /// `misses` stat means "computed", and a probe computes nothing).
    /// The sweep fast path probes per-s artifacts this way.
    pub fn lookup(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.last_used = now;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.value))
    }

    /// The current invalidation generation of `dataset`. Record it
    /// *before* reading the dataset, then pass it to
    /// [`SingleFlightCache::insert_if_current`]: the pair fences direct
    /// inserts against a concurrent dataset replacement the same way
    /// `get_or_compute` fences its flights.
    pub fn generation(&self, dataset: &str) -> u64 {
        self.lock().generation(dataset)
    }

    /// Inserts a value computed outside a flight (the sweep path builds
    /// many artifacts in one ensemble pass), but only when the dataset's
    /// generation still equals `generation` — a replacement racing the
    /// computation must not pin stale entries. Counts as a miss when
    /// inserted (a computation happened); returns whether it entered the
    /// map.
    pub fn insert_if_current(&self, key: K, generation: u64, value: V, bytes: usize) -> bool {
        let mut inner = self.lock();
        if inner.generation(key.dataset()) != generation {
            return false;
        }
        inner.clock += 1;
        let now = inner.clock;
        if let Some(previous) = inner.map.insert(
            key.clone(),
            Entry {
                value: Arc::new(value),
                bytes,
                last_used: now,
            },
        ) {
            inner.used_bytes -= previous.bytes;
        }
        inner.used_bytes += bytes;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evict_lru(&mut inner, &key);
        true
    }

    /// Evicts least-recently-used entries (never `keep`) until within
    /// budget or only `keep` remains.
    fn evict_lru(&self, inner: &mut Inner<K, V>, keep: &K) {
        while inner.used_bytes > self.budget_bytes && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.map.remove(&victim) {
                inner.used_bytes -= entry.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every entry for `dataset` (used when a dataset is replaced)
    /// and bumps the dataset's generation so in-flight computations
    /// started against the old data are not cached when they land.
    /// In-flight markers for the dataset are detached too: callers
    /// already waiting still get the old-data result they asked for, but
    /// requests arriving after the invalidation start a fresh flight
    /// against the new data instead of coalescing onto the stale one.
    pub fn invalidate_dataset(&self, dataset: &str) {
        let mut inner = self.lock();
        *inner.generations.entry(dataset.to_string()).or_insert(0) += 1;
        let victims: Vec<K> = inner
            .map
            .keys()
            .filter(|k| k.dataset() == dataset)
            .cloned()
            .collect();
        for key in victims {
            if let Some(entry) = inner.map.remove(&key) {
                inner.used_bytes -= entry.bytes;
            }
        }
        inner.inflight.retain(|k, _| k.dataset() != dataset);
        inner.negative.retain(|k, _| k.dataset() != dataset);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            entries: inner.map.len(),
            used_bytes: inner.used_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn key(dataset: &str, s: u32) -> CacheKey {
        CacheKey {
            dataset: dataset.to_string(),
            s,
            algorithm: AlgoKind::Algo2,
            weighted: false,
        }
    }

    #[test]
    fn cache_key_equality_covers_every_field() {
        let base = key("a", 2);
        assert_eq!(base, base.clone());
        assert_ne!(base, key("b", 2));
        assert_ne!(base, key("a", 3));
        assert_ne!(
            base,
            CacheKey {
                algorithm: AlgoKind::Algo1,
                ..base.clone()
            }
        );
        assert_ne!(
            base,
            CacheKey {
                weighted: true,
                ..base.clone()
            }
        );
    }

    #[test]
    fn algo_names_roundtrip() {
        for algo in [
            AlgoKind::Algo2,
            AlgoKind::Algo1,
            AlgoKind::Spgemm,
            AlgoKind::Naive,
        ] {
            assert_eq!(AlgoKind::from_name(algo.name()), Some(algo));
        }
        assert_eq!(AlgoKind::from_name("2"), Some(AlgoKind::Algo2));
        assert_eq!(AlgoKind::from_name("bogus"), None);
    }

    #[test]
    fn hit_after_miss() {
        let cache: ArtifactCache<u64> = ArtifactCache::new(1024);
        let (v, outcome) = cache.get_or_compute(&key("a", 2), || Ok((7, 8))).unwrap();
        assert_eq!((*v, outcome), (7, CacheOutcome::Miss));
        let (v, outcome) = cache
            .get_or_compute(&key("a", 2), || panic!("must not recompute"))
            .unwrap();
        assert_eq!((*v, outcome), (7, CacheOutcome::Hit));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        cache.get_or_compute(&key("a", 1), || Ok((1, 40))).unwrap();
        cache.get_or_compute(&key("a", 2), || Ok((2, 40))).unwrap();
        // Touch s=1 so s=2 is now the LRU entry.
        cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        // Inserting 40 more bytes (120 > 100) must evict s=2, not s=1.
        cache.get_or_compute(&key("a", 3), || Ok((3, 40))).unwrap();
        let (_, outcome) = cache.get_or_compute(&key("a", 1), || Ok((1, 40))).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "recently used entry survived");
        let (_, outcome) = cache.get_or_compute(&key("a", 2), || Ok((2, 40))).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss, "LRU entry was evicted");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn oversized_entry_is_kept_alone() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        cache.get_or_compute(&key("a", 1), || Ok((1, 30))).unwrap();
        cache.get_or_compute(&key("a", 2), || Ok((2, 500))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "all other entries evicted");
        let (_, outcome) = cache.get_or_compute(&key("a", 2), || Ok((2, 500))).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit, "oversized entry still serves");
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        let err = cache
            .get_or_compute(&key("a", 1), || Err("nope".to_string()))
            .unwrap_err();
        assert_eq!(err, "nope");
        // The key is retried, not poisoned.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((9, 8))).unwrap();
        assert_eq!((*v, outcome), (9, CacheOutcome::Miss));
    }

    #[test]
    fn invalidate_dataset_clears_only_that_dataset() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        cache.get_or_compute(&key("a", 1), || Ok((1, 10))).unwrap();
        cache.get_or_compute(&key("b", 1), || Ok((2, 10))).unwrap();
        cache.invalidate_dataset("a");
        let (_, oa) = cache.get_or_compute(&key("a", 1), || Ok((1, 10))).unwrap();
        let (_, ob) = cache
            .get_or_compute(&key("b", 1), || unreachable!())
            .unwrap();
        assert_eq!((oa, ob), (CacheOutcome::Miss, CacheOutcome::Hit));
    }

    #[test]
    fn panicking_compute_resolves_waiters_and_retries() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        let err = cache
            .get_or_compute(&key("a", 1), || panic!("kernel assert"))
            .unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("kernel assert"), "{err}");
        // The key is usable again afterwards.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((3, 8))).unwrap();
        assert_eq!((*v, outcome), (3, CacheOutcome::Miss));
    }

    #[test]
    fn invalidation_mid_flight_prevents_stale_caching() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        // The compute simulates "dataset replaced while building".
        let (v, outcome) = cache
            .get_or_compute(&key("a", 1), || {
                cache.invalidate_dataset("a");
                Ok((1, 10))
            })
            .unwrap();
        assert_eq!(
            (*v, outcome),
            (1, CacheOutcome::Miss),
            "caller still served"
        );
        // But the stale artifact was NOT cached.
        let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((2, 10))).unwrap();
        assert_eq!((*v, outcome), (2, CacheOutcome::Miss));
        // Subsequent entries cache normally under the new generation.
        let (_, outcome) = cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn post_invalidation_requests_do_not_coalesce_onto_stale_flight() {
        use std::sync::atomic::AtomicBool;
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        let started = AtomicBool::new(false);
        let release = AtomicBool::new(false);
        let (cache, started, release) = (&cache, &started, &release);
        std::thread::scope(|scope| {
            let owner = scope.spawn(move || {
                cache
                    .get_or_compute(&key("a", 1), || {
                        started.store(true, Ordering::Relaxed);
                        while !release.load(Ordering::Relaxed) {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        Ok((1, 10))
                    })
                    .unwrap()
            });
            while !started.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // Dataset replaced while the owner is mid-compute.
            cache.invalidate_dataset("a");
            // A post-invalidation request must start a fresh flight, not
            // wait on (and share) the stale one.
            let (v, outcome) = cache.get_or_compute(&key("a", 1), || Ok((2, 10))).unwrap();
            assert_eq!((*v, outcome), (2, CacheOutcome::Miss));
            release.store(true, Ordering::Relaxed);
            let (v, outcome) = owner.join().unwrap();
            assert_eq!((*v, outcome), (1, CacheOutcome::Miss), "owner still served");
        });
        // The fresh artifact is what stays cached.
        let (v, outcome) = cache
            .get_or_compute(&key("a", 1), || unreachable!())
            .unwrap();
        assert_eq!((*v, outcome), (2, CacheOutcome::Hit));
    }

    #[test]
    fn lookup_probes_without_computing() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        assert!(cache.lookup(&key("a", 1)).is_none());
        // A failed probe is not a miss (nothing was computed).
        assert_eq!(cache.stats().misses, 0);
        cache.get_or_compute(&key("a", 1), || Ok((9, 10))).unwrap();
        assert_eq!(*cache.lookup(&key("a", 1)).unwrap(), 9);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lookup_refreshes_lru_position() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(100);
        cache.get_or_compute(&key("a", 1), || Ok((1, 40))).unwrap();
        cache.get_or_compute(&key("a", 2), || Ok((2, 40))).unwrap();
        // Probe s=1 so s=2 becomes the eviction victim.
        assert!(cache.lookup(&key("a", 1)).is_some());
        cache.get_or_compute(&key("a", 3), || Ok((3, 40))).unwrap();
        assert!(cache.lookup(&key("a", 1)).is_some(), "probed entry kept");
        assert!(cache.lookup(&key("a", 2)).is_none(), "LRU entry evicted");
    }

    #[test]
    fn insert_if_current_respects_generation_fence() {
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        let generation = cache.generation("a");
        // Replacement lands between the generation read and the insert:
        // the insert must be dropped.
        cache.invalidate_dataset("a");
        assert!(!cache.insert_if_current(key("a", 1), generation, 7, 10));
        assert!(cache.lookup(&key("a", 1)).is_none(), "stale insert pinned");
        // Under the current generation the insert lands and serves.
        let generation = cache.generation("a");
        assert!(cache.insert_if_current(key("a", 1), generation, 8, 10));
        assert_eq!(*cache.lookup(&key("a", 1)).unwrap(), 8);
        // Re-inserting the same key replaces the entry without leaking
        // accounted bytes.
        assert!(cache.insert_if_current(key("a", 1), generation, 9, 30));
        assert_eq!(cache.stats().used_bytes, 30);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn flight_insert_over_resident_entry_accounts_bytes_once() {
        // A sweep's insert_if_current can land an entry while a flight
        // for the same key is still computing; when the flight lands its
        // own copy, the replaced entry's bytes must be released.
        let cache: ArtifactCache<u32> = ArtifactCache::new(1000);
        let generation = cache.generation("a");
        cache
            .get_or_compute(&key("a", 1), || {
                // Simulates the concurrent direct insert mid-flight.
                assert!(cache.insert_if_current(key("a", 1), generation, 7, 40));
                Ok((8, 40))
            })
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.used_bytes, 40, "replaced entry's bytes leaked");
        assert_eq!(*cache.lookup(&key("a", 1)).unwrap(), 8, "flight value wins");
    }

    #[test]
    fn metric_tier_shares_invalidation_semantics() {
        fn mkey(dataset: &str, metric: MetricKind) -> MetricKey {
            MetricKey {
                artifact: key(dataset, 2),
                metric,
            }
        }
        let cache: SingleFlightCache<MetricKey, u32> = SingleFlightCache::new(1000);
        let bc = MetricKind::Betweenness {
            samples: 0,
            seed: 42,
        };
        cache
            .get_or_compute(&mkey("a", bc), || Ok((1, 10)))
            .unwrap();
        cache
            .get_or_compute(&mkey("b", bc), || Ok((2, 10)))
            .unwrap();
        // Distinct metric params are distinct entries.
        let sampled = MetricKind::Betweenness {
            samples: 8,
            seed: 42,
        };
        cache
            .get_or_compute(&mkey("a", sampled), || Ok((3, 10)))
            .unwrap();
        assert_eq!(cache.stats().entries, 3);
        // Invalidating one dataset clears exactly its metric entries.
        cache.invalidate_dataset("a");
        assert!(cache.lookup(&mkey("a", bc)).is_none());
        assert!(cache.lookup(&mkey("a", sampled)).is_none());
        assert_eq!(*cache.lookup(&mkey("b", bc)).unwrap(), 2);
    }

    #[test]
    fn single_flight_deduplicates_concurrent_computes() {
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new(1 << 20));
        let computes = AtomicUsize::new(0);
        let computes = &computes;
        let cache_ref = &cache;
        let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    scope.spawn(move || {
                        let (v, outcome) = cache_ref
                            .get_or_compute(&key("a", 5), || {
                                computes.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window.
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                Ok((11, 8))
                            })
                            .unwrap();
                        assert_eq!(*v, 11);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            computes.load(Ordering::Relaxed),
            1,
            "exactly one computation"
        );
        let misses = outcomes
            .iter()
            .filter(|&&o| o == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        assert_eq!(cache.stats().coalesced + cache.stats().hits, 15);
    }
}
