//! A compact fixed-capacity bitset.
//!
//! Used for visited-marking in graph traversals (BFS frontiers, connected
//! components) where a `Vec<bool>` wastes 8x the cache footprint.

/// A fixed-capacity bitset over `usize`-indexed slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates a bitset able to hold `len` bits, all initially zero.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits this set can hold.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *word & mask != 0;
        *word |= mask;
        was
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Zeroes every bit, keeping capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            BitIter { word: w, base }
        })
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1; // clear lowest set bit
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        assert!(!b.set(0));
        assert!(b.get(0));
        assert!(b.set(0), "second set reports previously-set");
        assert!(!b.set(129));
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
    }

    #[test]
    fn count_and_iter() {
        let mut b = BitSet::new(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            b.set(i);
        }
        assert_eq!(b.count_ones(), idx.len());
        let collected: Vec<usize> = b.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = BitSet::new(77);
        for i in 0..77 {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 77);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 77);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn exact_word_boundary() {
        let mut b = BitSet::new(64);
        b.set(63);
        assert!(b.get(63));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![63]);
    }
}
