//! The planted overlapping-community hypergraph model.
//!
//! This is the workhorse generator standing in for the paper's real
//! datasets (see DESIGN.md §3). The model controls exactly the properties
//! that drive the s-line-graph algorithms' cost and output shape:
//!
//! * **edge-size skew** — sizes follow a bounded power law, producing the
//!   few huge hyperedges responsible for load imbalance (Fig. 7/10);
//! * **vertex-degree skew** — global vertex draws are Zipf-distributed,
//!   producing hub vertices with enormous wedge counts;
//! * **overlap depth** — hyperedges assigned to the same community draw a
//!   fraction (`affinity`) of their members from a shared core, so pairs
//!   within a community overlap deeply and non-trivial s-line graphs
//!   exist at large `s`.

use crate::sampling::{power_law, sample_distinct, AliasTable};
use hyperline_hypergraph::Hypergraph;
use hyperline_util::fxhash::FxHashSet;
use rand::prelude::*;

/// Parameters of the community model. See the module docs for what each
/// knob reproduces.
#[derive(Debug, Clone)]
pub struct CommunityModel {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of hyperedges `m`.
    pub num_edges: usize,
    /// Smallest hyperedge size.
    pub edge_size_min: usize,
    /// Largest hyperedge size (the Δe driver).
    pub edge_size_max: usize,
    /// Power-law exponent for hyperedge sizes (larger = more skew toward
    /// small edges).
    pub edge_size_exponent: f64,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Vertices in each community core.
    pub core_size: usize,
    /// Fraction of each edge's members drawn from its community core
    /// (`0.0` = pure random bipartite, `1.0` = fully nested communities).
    pub affinity: f64,
    /// Zipf exponent for assigning edges to communities (0 = uniform).
    pub community_skew: f64,
    /// Zipf exponent for global vertex draws (0 = uniform; > 0 creates
    /// hub vertices).
    pub vertex_skew: f64,
}

impl Default for CommunityModel {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            num_edges: 2000,
            edge_size_min: 2,
            edge_size_max: 50,
            edge_size_exponent: 2.0,
            num_communities: 50,
            core_size: 30,
            affinity: 0.7,
            community_skew: 0.8,
            vertex_skew: 0.9,
        }
    }
}

impl CommunityModel {
    /// Generates the hypergraph deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Hypergraph {
        let lists = self.generate_edge_lists(seed);
        Hypergraph::from_edge_lists(&lists, self.num_vertices)
    }

    /// Generates raw edge lists (for callers that post-process, e.g. the
    /// planted-group profiles).
    pub fn generate_edge_lists(&self, seed: u64) -> Vec<Vec<u32>> {
        assert!(self.num_vertices > 0, "need at least one vertex");
        assert!(self.edge_size_min >= 1 && self.edge_size_min <= self.edge_size_max);
        assert!((0.0..=1.0).contains(&self.affinity), "affinity in [0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_vertices;
        let ncomm = self.num_communities.max(1);
        let core_size = self.core_size.clamp(1, n);
        // Community cores are overlapping contiguous windows (mod n), so
        // adjacent communities share vertices — cross-community s-edges
        // exist, as in real data.
        let stride = (n / ncomm).max(1);
        let community_table = AliasTable::zipf(ncomm, self.community_skew.max(0.0));
        let vertex_table = AliasTable::zipf(n, self.vertex_skew.max(0.0));

        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(self.num_edges);
        let mut members: FxHashSet<u32> = FxHashSet::default();
        for _ in 0..self.num_edges {
            let k = power_law(
                &mut rng,
                self.edge_size_min,
                self.edge_size_max,
                self.edge_size_exponent,
            )
            .min(n);
            let c = community_table.sample(&mut rng) as usize;
            let core_start = (c * stride) % n;
            let from_core = ((self.affinity * k as f64).round() as usize)
                .min(core_size)
                .min(k);
            members.clear();
            for idx in sample_distinct(&mut rng, core_size, from_core) {
                members.insert(((core_start + idx as usize) % n) as u32);
            }
            // Global draws (Zipf-skewed) fill the remainder; retry on
            // duplicates with a bounded number of attempts.
            let mut attempts = 0;
            while members.len() < k && attempts < 20 * k {
                members.insert(vertex_table.sample(&mut rng));
                attempts += 1;
            }
            let mut edge: Vec<u32> = members.iter().copied().collect();
            edge.sort_unstable();
            lists.push(edge);
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> CommunityModel {
        CommunityModel {
            num_vertices: 500,
            num_edges: 800,
            edge_size_min: 2,
            edge_size_max: 40,
            edge_size_exponent: 2.0,
            num_communities: 20,
            core_size: 25,
            affinity: 0.8,
            community_skew: 0.7,
            vertex_skew: 0.8,
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let m = small_model();
        assert_eq!(m.generate(7), m.generate(7));
        assert_ne!(m.generate(7), m.generate(8));
    }

    #[test]
    fn respects_shape_parameters() {
        let m = small_model();
        let h = m.generate(1);
        assert_eq!(h.num_edges(), 800);
        assert_eq!(h.num_vertices(), 500);
        for e in 0..h.num_edges() as u32 {
            let sz = h.edge_size(e);
            assert!((1..=40).contains(&sz), "edge {e} has size {sz}");
        }
    }

    #[test]
    fn produces_skewed_edge_sizes() {
        let m = CommunityModel {
            num_edges: 5000,
            ..small_model()
        };
        let h = m.generate(2);
        let sizes: Vec<usize> = (0..h.num_edges() as u32).map(|e| h.edge_size(e)).collect();
        let small = sizes.iter().filter(|&&s| s <= 4).count();
        let large = sizes.iter().filter(|&&s| s >= 20).count();
        assert!(small > 3 * large.max(1), "small={small} large={large}");
        assert!(large > 0, "tail must exist");
    }

    #[test]
    fn high_affinity_creates_deep_overlaps() {
        let m = CommunityModel {
            affinity: 0.95,
            edge_size_min: 10,
            edge_size_max: 20,
            ..small_model()
        };
        let h = m.generate(3);
        // Some pair of edges must overlap in >= 5 vertices.
        let mut deep = 0;
        for e in 0..200u32 {
            for f in (e + 1)..200u32 {
                if h.inc(e, f) >= 5 {
                    deep += 1;
                }
            }
        }
        assert!(deep > 0, "no deep overlaps with high affinity");
    }

    #[test]
    fn zero_affinity_rarely_overlaps_deeply() {
        let m = CommunityModel {
            affinity: 0.0,
            vertex_skew: 0.0,
            num_vertices: 5000,
            edge_size_min: 3,
            edge_size_max: 6,
            ..small_model()
        };
        let h = m.generate(4);
        let mut deep = 0;
        for e in 0..200u32 {
            for f in (e + 1)..200u32 {
                if h.inc(e, f) >= 3 {
                    deep += 1;
                }
            }
        }
        assert!(
            deep <= 2,
            "uniform sparse draws should rarely share 3+ vertices, got {deep}"
        );
    }

    #[test]
    fn skewed_vertex_degrees() {
        let m = CommunityModel {
            vertex_skew: 1.2,
            affinity: 0.2,
            ..small_model()
        };
        let h = m.generate(5);
        let max_deg = h.max_vertex_degree() as f64;
        let mean_deg = h.mean_vertex_degree();
        assert!(max_deg > 5.0 * mean_deg, "max {max_deg} vs mean {mean_deg}");
    }

    #[test]
    fn edge_size_cannot_exceed_vertex_count() {
        let m = CommunityModel {
            num_vertices: 8,
            num_edges: 50,
            edge_size_min: 2,
            edge_size_max: 100,
            ..Default::default()
        };
        let h = m.generate(6);
        for e in 0..h.num_edges() as u32 {
            assert!(h.edge_size(e) <= 8);
        }
    }
}
