//! Dense symmetric eigensolver (cyclic Jacobi).
//!
//! A small, dependency-free eigensolver used to (a) verify the iterative
//! spectral routines on small matrices and (b) compute exact spectra of
//! squeezed s-line graphs when they are tiny. O(n³) per sweep — intended
//! for n up to a few hundred.

/// A dense symmetric matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n` or the data is not symmetric.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        let m = Self { n, data };
        for i in 0..n {
            for j in 0..i {
                assert!(
                    (m.get(i, j) - m.get(j, i)).abs() < 1e-12,
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric element setter (writes both `(i,j)` and `(j,i)`).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Sum of squares of off-diagonal elements (Jacobi convergence gauge).
    fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j) * self.get(i, j);
                }
            }
        }
        s
    }

    /// All eigenvalues, ascending, via cyclic Jacobi rotations.
    pub fn eigenvalues(&self) -> Vec<f64> {
        let mut a = self.clone();
        let n = a.n;
        if n == 0 {
            return Vec::new();
        }
        for _sweep in 0..100 {
            if a.off_diagonal_norm() < 1e-22 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Closed-form two-sided rotation Gᵀ A G on (p, q).
                    a.set(p, p, app - t * apq);
                    a.set(q, q, aqq + t * apq);
                    a.set(p, q, 0.0);
                    for k in 0..n {
                        if k == p || k == q {
                            continue;
                        }
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                }
            }
        }
        let mut eigs: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        // total_cmp: a NaN (non-convergent input) sorts to the end
        // instead of panicking mid-sort.
        eigs.sort_by(f64::total_cmp);
        eigs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn diagonal_matrix() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        assert_close(&m.eigenvalues(), &[1.0, 2.0, 3.0], 1e-10);
    }

    #[test]
    fn two_by_two() {
        // [[2, 1], [1, 2]] -> eigenvalues 1, 3
        let m = SymMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 2.0]);
        assert_close(&m.eigenvalues(), &[1.0, 3.0], 1e-10);
    }

    #[test]
    fn path_laplacian() {
        // Combinatorial Laplacian of path 0-1-2: eigenvalues 0, 1, 3.
        let m = SymMatrix::from_rows(3, vec![1.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 1.0]);
        assert_close(&m.eigenvalues(), &[0.0, 1.0, 3.0], 1e-9);
    }

    #[test]
    fn trace_preserved() {
        let m = SymMatrix::from_rows(
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, //
                1.0, 3.0, 0.2, 0.7, //
                0.5, 0.2, 2.0, 0.1, //
                0.0, 0.7, 0.1, 1.0,
            ],
        );
        let eigs = m.eigenvalues();
        let trace: f64 = (0..4).map(|i| m.get(i, i)).sum();
        let sum: f64 = eigs.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn empty_and_single() {
        assert!(SymMatrix::zeros(0).eigenvalues().is_empty());
        let mut m = SymMatrix::zeros(1);
        m.set(0, 0, 5.0);
        assert_close(&m.eigenvalues(), &[5.0], 1e-12);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn symmetry_enforced() {
        SymMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
