//! Server smoke benchmark: cold vs warm latency of the cache-backed
//! endpoints, recorded to `BENCH_server.json`.
//!
//! Starts a real `hyperline-server` on an ephemeral port, loads a
//! generator profile, and measures — over raw TCP, like a client —
//! the cold (first, cache-miss) and warm (repeated, metric-tier hit)
//! latencies of `/sweep?max_s=8` and `/betweenness?s=2`, plus a warm
//! `/slg` artifact-tier read. The JSON report is the bench trajectory's
//! record of the two-tier cache's effect; `scripts/check.sh` runs this
//! after the test suite.
//!
//! `cargo run -p hyperline-bench --release --bin server_smoke`
//! Options: `--profile=genomics --seed=42 --reps=9 --out=BENCH_server.json`

use hyperline_bench::{arg, print_header};
use hyperline_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One `Connection: close` GET; returns `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Cold latency + median warm latency (of `reps` repeats) for `target`,
/// asserting 200s and byte-identical repeated bodies along the way
/// (modulo the `/slg` cache-outcome tag, which legitimately flips from
/// `miss` to `hit`).
fn measure(addr: SocketAddr, target: &str, reps: usize) -> (f64, f64) {
    fn normalize(body: &str) -> String {
        body.replace("\"cache\":\"miss\"", "\"cache\":\"hit\"")
            .replace("\"cache\":\"coalesced\"", "\"cache\":\"hit\"")
    }
    let started = Instant::now();
    let (status, cold_body) = get(addr, target);
    let cold = started.elapsed().as_secs_f64() * 1e6;
    assert_eq!(status, 200, "{target}: {cold_body}");
    let mut warm: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let started = Instant::now();
            let (status, body) = get(addr, target);
            assert_eq!(status, 200);
            assert_eq!(
                normalize(&body),
                normalize(&cold_body),
                "{target}: response diverged"
            );
            started.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    warm.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (cold, warm[warm.len() / 2])
}

fn endpoint_report(name: &str, cold_micros: f64, warm_micros: f64) -> hyperline_server::json::Json {
    use hyperline_server::json::Json;
    println!(
        "{name:<14} cold {:>10.0} us   warm {:>8.0} us   speedup {:>8.1}x",
        cold_micros,
        warm_micros,
        cold_micros / warm_micros
    );
    Json::obj()
        .set("endpoint", name)
        .set("cold_micros", cold_micros)
        .set("warm_micros_median", warm_micros)
        .set("speedup", cold_micros / warm_micros)
}

fn main() {
    use hyperline_server::json::Json;
    print_header("server smoke: cold vs warm latency of the two-tier cache");
    let profile: String = arg("profile", "genomics".to_string());
    let seed: u64 = arg("seed", 42);
    let reps: usize = arg("reps", 9);
    let out: String = arg("out", "BENCH_server.json".to_string());

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let name = server
        .registry()
        .load_profile(&profile, seed, None)
        .expect("load profile");
    let handle = server.spawn();
    let addr = handle.addr();

    // `/slg` first: the sweep below would otherwise pre-populate its
    // artifact and hide the artifact-tier's cold cost.
    let (slg_cold, slg_warm) = measure(addr, &format!("/datasets/{name}/slg?s=2&limit=16"), reps);
    let (sweep_cold, sweep_warm) = measure(addr, &format!("/datasets/{name}/sweep?max_s=8"), reps);
    let (bc_cold, bc_warm) = measure(addr, &format!("/datasets/{name}/betweenness?s=2"), reps);

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let report = Json::obj()
        .set("profile", name.as_str())
        .set("seed", seed)
        .set("reps", reps)
        .set(
            "endpoints",
            Json::Arr(vec![
                endpoint_report("slg", slg_cold, slg_warm),
                endpoint_report("sweep", sweep_cold, sweep_warm),
                endpoint_report("betweenness", bc_cold, bc_warm),
            ]),
        );
    std::fs::write(&out, report.render()).expect("write report");
    println!("\nwrote {out}");
    // Surface the tier counters so a broken cache is visible in CI logs.
    if let Some(cache) = metrics
        .split("\"cache\":")
        .nth(1)
        .and_then(|rest| rest.split("},\"endpoints\"").next())
    {
        println!("cache tiers: {cache}}}");
    }
    handle.shutdown();
}
